(** End-to-end measurement pipeline: synthetic distribution bytes in,
    populated store out. Every binary goes through the same steps as
    the paper's tool: parse the ELF, disassemble, build the call
    graph, resolve footprints across shared libraries, and aggregate
    per package with script-to-interpreter inheritance. *)

open Lapis_apidb
module Binary = Lapis_analysis.Binary
module Resolve = Lapis_analysis.Resolve
module Footprint = Lapis_analysis.Footprint
module P = Lapis_distro.Package

let src = Logs.Src.create "lapis.pipeline"
module Log = (val Logs.src_log src : Logs.LOG)

type analyzed = {
  store : Store.t;
  world : Resolve.world;
  dist : P.distribution;
}

let interpreter_package = function
  | Lapis_elf.Classify.Dash -> Some "dash"
  | Lapis_elf.Classify.Bash -> Some "bash"
  | Lapis_elf.Classify.Python -> Some "python2.7"
  | Lapis_elf.Classify.Perl -> Some "perl"
  | Lapis_elf.Classify.Ruby -> Some "ruby1.9"
  | Lapis_elf.Classify.Other_interp _ -> None

module Stage = Lapis_perf.Stage
module Reader = Lapis_elf.Reader

(* Analyze one ELF payload behind the quarantine boundary: a parse
   failure becomes its taxonomy kind, and an exception escaping the
   analyzer (the crash-containment net under the fuzz harness) becomes
   "analysis-crash" — either way the caller counts the binary and
   skips it instead of the whole run dying. *)
let analyze_elf ~mode ~decode_fuel bytes : (Binary.t, string) result =
  match Stage.time "elf-parse" (fun () -> Reader.parse bytes) with
  | Ok img ->
    (try Ok (Binary.analyze ~mode ?decode_fuel img)
     with e ->
       Log.err (fun m ->
           m "analysis crash (quarantined): %s" (Printexc.to_string e));
       Error "analysis-crash")
  | Error e ->
    Log.warn (fun m ->
        m "unparseable ELF (%s): %a"
          Reader.(kind_name (kind e))
          Reader.pp_error e);
    Error Reader.(kind_name (kind e))

(* The content-hash analysis cache, exposed as an opaque handle so a
   caller re-analyzing successive releases of an evolving world can
   carry one cache across runs: binaries whose bytes a release leaves
   untouched hash to the same digest and are served from the table
   instead of being re-analyzed. Analysis is a pure function of the
   bytes, so the incremental result is bit-identical to a
   from-scratch run (the evolve bench asserts this at every epoch). *)
type analysis_cache = (Digest.t, (Binary.t, string) result) Hashtbl.t

let new_cache () : analysis_cache = Hashtbl.create 1024
let cache_size (c : analysis_cache) = Hashtbl.length c

(* The run configuration record replaces the optional-argument
   accretion ([?mode ?cache ?domains], with [?decode_fuel] next in
   line): callers override one field of [default] and keep source
   compatibility when the next knob lands. *)
type config = {
  mode : Binary.mode;  (** per-function engine: dataflow or linear *)
  cache : bool;  (** content-hash analysis cache over ELF payloads *)
  domains : int option;  (** cap for the per-binary analysis fan-out *)
  decode_fuel : int option;
      (** per-binary decode budget; [None] uses the analyzer default *)
  shared_cache : analysis_cache option;
      (** carry this cache across runs (implies [cache]); hit/miss
          ratios surface as the [incremental:*] counters *)
}

let default =
  { mode = Binary.Dataflow; cache = true; domains = None; decode_fuel = None;
    shared_cache = None }

let run ?(config = default) (dist : P.distribution) : analyzed =
  let { mode; cache; domains; decode_fuel; shared_cache } = config in
  let cache = cache || shared_cache <> None in
  let analyze_elf bytes = analyze_elf ~mode ~decode_fuel bytes in
  (* Per-error-kind quarantine counters: every binary the run skipped
     is counted here (and mirrored into the Stage counters, so the
     bench JSON carries them), never silently dropped. Recording
     happens only on the coordinating domain — the parallel section
     returns results and the counting is done after the join. *)
  let rejects : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let record_reject kind =
    Hashtbl.replace rejects kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt rejects kind));
    Stage.incr ("reject:" ^ kind)
  in
  (* Content-hash analysis cache: byte-identical ELF inputs are
     analyzed once. It is seeded with the shared-library world below,
     so a package shipping a library analyzed for the world reuses the
     same Binary.t — which also lets the resolver serve that binary's
     footprint from its per-export memo. When the caller supplies a
     [shared_cache], the same table additionally carries results from
     previous releases of an evolving world, and only the binaries
     whose bytes actually changed are re-analyzed. *)
  let analysis_of : analysis_cache =
    match shared_cache with Some c -> c | None -> Hashtbl.create 1024
  in
  (* Incremental accounting (shared cache only): each distinct payload
     the run touches counts once — as a hit if a previous run already
     analyzed it, as a miss if this run had to. Their ratio is the
     cross-release reuse the evolve bench gates on. *)
  let inc_hits = ref 0 and inc_misses = ref 0 in
  let inherited : (Digest.t, unit) Hashtbl.t =
    match shared_cache with
    | None -> Hashtbl.create 1
    | Some c ->
      let h = Hashtbl.create (2 * Hashtbl.length c) in
      Hashtbl.iter (fun d _ -> Hashtbl.replace h d ()) c;
      h
  in
  let counted : (Digest.t, unit) Hashtbl.t = Hashtbl.create 256 in
  let note_payload d =
    if shared_cache <> None && not (Hashtbl.mem counted d) then begin
      Hashtbl.replace counted d ();
      if Hashtbl.mem inherited d then incr inc_hits else incr inc_misses
    end
  in
  (* Analyze one world library through the cache: a payload analyzed
     by a previous release (or earlier in this run) is served from the
     table; errors are cached too, so a bad payload is diagnosed once
     but still counted per use site. *)
  let analyze_lib bytes =
    if not cache then analyze_elf bytes
    else begin
      let d = Digest.string bytes in
      note_payload d;
      match Hashtbl.find_opt analysis_of d with
      | Some r -> r
      | None ->
        let r = analyze_elf bytes in
        Hashtbl.replace analysis_of d r;
        r
    end
  in
  (* 1. analyze the shared-library world *)
  let runtime_sonames = List.map fst dist.P.runtime in
  let runtime_bins =
    List.filter_map
      (fun (soname, bytes) ->
        match analyze_lib bytes with
        | Ok b -> Some (soname, b)
        | Error kind ->
          record_reject kind;
          None)
      dist.P.runtime
  in
  let app_lib_bins =
    List.filter_map
      (fun (soname, pkg, bytes) ->
        match analyze_lib bytes with
        | Ok b -> Some (soname, pkg, b)
        | Error kind ->
          record_reject kind;
          None)
      dist.P.shared_libs
  in
  let ld_so =
    List.assoc_opt "ld-linux-x86-64.so.2" runtime_bins
  in
  let world =
    Resolve.make_world ?ld_so
      ~libc_family:(fun soname -> List.mem soname runtime_sonames)
      (runtime_bins @ List.map (fun (s, _, b) -> (s, b)) app_lib_bins)
  in
  (* 2. per-binary analysis: collect the distinct ELF payloads not
     already analyzed for the world (first-seen order), analyze them —
     fanned out across domains when the host has more than one — and
     serve the aggregation loop from the digest table. *)
  let analysis_for =
    if not cache then fun (f : P.file) -> analyze_elf f.P.bytes
    else begin
      let pending = ref [] in
      List.iter
        (fun (pkg : P.t) ->
          List.iter
            (fun (f : P.file) ->
              match Lapis_elf.Classify.classify f.P.bytes with
              | Lapis_elf.Classify.Elf_static | Lapis_elf.Classify.Elf_dynamic
              | Lapis_elf.Classify.Elf_shared_lib ->
                let d = Digest.string f.P.bytes in
                note_payload d;
                if not (Hashtbl.mem analysis_of d) then begin
                  (* placeholder marks the digest as claimed; replaced
                     with the real result after the parallel map *)
                  Hashtbl.replace analysis_of d (Error "claimed");
                  pending := (d, f.P.bytes) :: !pending
                end
              | Lapis_elf.Classify.Script _ | Lapis_elf.Classify.Data -> ())
            pkg.P.files)
        dist.P.packages;
      let pending = List.rev !pending in
      List.iter2
        (fun (d, _) r -> Hashtbl.replace analysis_of d r)
        pending
        (Lapis_perf.Parmap.map ?domains
           (fun (_, bytes) -> analyze_elf bytes)
           pending);
      fun (f : P.file) ->
        match Hashtbl.find_opt analysis_of (Digest.string f.P.bytes) with
        | Some r -> r
        | None -> analyze_elf f.P.bytes
    end
  in
  (* 3. per-package aggregation *)
  let bins = ref [] in
  let script_needs = Hashtbl.create 64 in  (* pkg -> interp pkgs *)
  let elf_apis = Hashtbl.create 256 in  (* pkg -> Api.Set from executables *)
  (* phased slices of [elf_apis]: per-binary temporal attribution
     unioned per package; invariant init ∪ serving == elf_apis *)
  let elf_init = Hashtbl.create 256 in
  let elf_serving = Hashtbl.create 256 in
  List.iter
    (fun (pkg : P.t) ->
      let apis = ref Api.Set.empty in
      let apis_init = ref Api.Set.empty in
      let apis_serving = ref Api.Set.empty in
      List.iter
        (fun (f : P.file) ->
          let cls = Lapis_elf.Classify.classify f.P.bytes in
          match cls with
          | Lapis_elf.Classify.Elf_static | Lapis_elf.Classify.Elf_dynamic ->
            (match analysis_for f with
             | Error kind -> record_reject kind
             | Ok bin ->
               let resolved =
                 Stage.time "resolve" (fun () ->
                     Resolve.binary_footprint world bin)
               in
               let init, serving =
                 Stage.time "phase:attribute" (fun () ->
                     Resolve.phased_footprint world bin ~total:resolved)
               in
               apis := Api.Set.union !apis resolved.Footprint.apis;
               apis_init := Api.Set.union !apis_init init;
               apis_serving := Api.Set.union !apis_serving serving;
               bins :=
                 {
                   Store.br_path = f.P.path;
                   br_package = pkg.P.name;
                   br_class = cls;
                   br_digest = Digest.string f.P.bytes;
                   br_direct = Resolve.direct_footprint bin;
                   br_resolved = resolved;
                   br_init = init;
                   br_serving = serving;
                 }
                 :: !bins)
          | Lapis_elf.Classify.Elf_shared_lib ->
            (* analyzed for attribution, excluded from the package
               footprint (Section 2: union over standalone executables) *)
            (match analysis_for f with
             | Error kind -> record_reject kind
             | Ok bin ->
               let resolved =
                 Stage.time "resolve" (fun () ->
                     Resolve.binary_footprint world bin)
               in
               bins :=
                 {
                   Store.br_path = f.P.path;
                   br_package = pkg.P.name;
                   br_class = cls;
                   br_digest = Digest.string f.P.bytes;
                   br_direct = Resolve.direct_footprint bin;
                   br_resolved = resolved;
                   (* a library has no phase of its own: its items are
                      attributed by the phase of its callers *)
                   br_init = resolved.Footprint.apis;
                   br_serving = resolved.Footprint.apis;
                 }
                 :: !bins)
          | Lapis_elf.Classify.Script interp ->
            (match interpreter_package interp with
             | Some ipkg ->
               let cur =
                 Option.value ~default:[]
                   (Hashtbl.find_opt script_needs pkg.P.name)
               in
               (* one entry per interpreter, not per script: the
                  inheritance rounds union the interpreter's whole
                  footprint per entry *)
               if not (List.mem ipkg cur) then
                 Hashtbl.replace script_needs pkg.P.name (ipkg :: cur)
             | None -> ());
            bins :=
              {
                Store.br_path = f.P.path;
                br_package = pkg.P.name;
                br_class = cls;
                br_digest = Digest.string f.P.bytes;
                br_direct = Footprint.empty;
                br_resolved = Footprint.empty;
                br_init = Api.Set.empty;
                br_serving = Api.Set.empty;
              }
              :: !bins
          | Lapis_elf.Classify.Data ->
            (* a file with the ELF magic that the classifier demoted
               to Data is a malformed binary: count it by error kind
               instead of letting it vanish from the run *)
            if String.length f.P.bytes >= 4
               && String.sub f.P.bytes 0 4 = "\x7fELF"
            then begin
              match Reader.parse f.P.bytes with
              | Error e -> record_reject Reader.(kind_name (kind e))
              | Ok _ -> ()
            end)
        pkg.P.files;
      Hashtbl.replace elf_apis pkg.P.name !apis;
      Hashtbl.replace elf_init pkg.P.name !apis_init;
      Hashtbl.replace elf_serving pkg.P.name !apis_serving)
    dist.P.packages;
  (* runtime binaries belong to libc6, for direct attribution *)
  List.iter
    (fun (soname, bin) ->
      bins :=
        {
          Store.br_path = "/lib/x86_64-linux-gnu/" ^ soname;
          br_package = "libc6";
          br_class = Lapis_elf.Classify.Elf_shared_lib;
          br_digest =
            (match List.assoc_opt soname dist.P.runtime with
             | Some bytes -> Digest.string bytes
             | None -> Digest.string soname);
          br_direct = Resolve.direct_footprint bin;
          br_resolved = Footprint.empty;
          br_init = Api.Set.empty;
          br_serving = Api.Set.empty;
        }
        :: !bins)
    runtime_bins;
  (* 4. scripts inherit the interpreter package's footprint; two
     rounds cover interpreters that themselves ship scripts *)
  Stage.time "aggregate" @@ fun () ->
  let final_apis = Hashtbl.copy elf_apis in
  for _round = 1 to 2 do
    Hashtbl.iter
      (fun pkg interps ->
        let cur = Option.value ~default:Api.Set.empty (Hashtbl.find_opt final_apis pkg) in
        let augmented =
          List.fold_left
            (fun acc ipkg ->
              match Hashtbl.find_opt final_apis ipkg with
              | Some s -> Api.Set.union acc s
              | None -> acc)
            cur interps
        in
        Hashtbl.replace final_apis pkg augmented)
      script_needs
  done;
  (* 5. store rows *)
  let pkg_rows =
    List.map
      (fun (pkg : P.t) ->
        let get tbl =
          Option.value ~default:Api.Set.empty
            (Hashtbl.find_opt tbl pkg.P.name)
        in
        let apis = get final_apis in
        let apis_elf = get elf_apis in
        (* script-inherited APIs have no call sites to attribute: they
           widen into both phases, preserving init ∪ serving == apis *)
        let inherited = Api.Set.diff apis apis_elf in
        {
          Store.pr_name = pkg.P.name;
          pr_installs = pkg.P.installs;
          pr_prob =
            float_of_int pkg.P.installs /. float_of_int dist.P.total_installs;
          pr_deps = pkg.P.deps;
          pr_essential = pkg.P.essential;
          pr_apis = apis;
          pr_apis_elf = apis_elf;
          pr_init = Api.Set.union (get elf_init) inherited;
          pr_serving = Api.Set.union (get elf_serving) inherited;
        })
      dist.P.packages
  in
  let store =
    Store.build ~packages:pkg_rows ~bins:!bins
      ~total_installs:dist.P.total_installs
  in
  (* cache-effectiveness counters for the bench JSON / CI smoke job *)
  if cache then
    Stage.incr "elf:distinct-payloads" ~by:(Hashtbl.length analysis_of);
  if shared_cache <> None then begin
    Stage.incr "incremental:hits" ~by:!inc_hits;
    Stage.incr "incremental:misses" ~by:!inc_misses
  end;
  Stage.incr "resolve:memo-hits" ~by:world.Resolve.stats.Resolve.memo_hits;
  Stage.incr "resolve:memo-misses"
    ~by:world.Resolve.stats.Resolve.memo_misses;
  Stage.incr "resolve:ld-so-computations"
    ~by:world.Resolve.stats.Resolve.ld_computations;
  (* publish the quarantine counters: zero entries on a clean corpus *)
  world.Resolve.stats.Resolve.rejects <-
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) rejects []);
  { store; world; dist }

let quarantined (a : analyzed) =
  List.fold_left
    (fun n (_, v) -> n + v)
    0 a.world.Resolve.stats.Resolve.rejects

(* The automated Section 2.3 spot check: compare the analyzer's
   ELF-derived package footprints against the generator's ground
   truth. Returns the packages where they disagree. *)
type mismatch = {
  mm_package : string;
  mm_missing : Api.t list;  (** in ground truth, not recovered *)
  mm_extra : Api.t list;  (** recovered, not in ground truth *)
}

let spot_check (a : analyzed) : mismatch list =
  Array.to_list a.store.Store.packages
  |> List.filter_map (fun (p : Store.pkg_row) ->
         match Hashtbl.find_opt a.dist.P.truth p.Store.pr_name with
         | None -> None
         | Some truth ->
           let got = p.Store.pr_apis_elf in
           let missing = Api.Set.diff truth got in
           let extra = Api.Set.diff got truth in
           if Api.Set.is_empty missing && Api.Set.is_empty extra then None
           else
             Some
               {
                 mm_package = p.Store.pr_name;
                 mm_missing = Api.Set.elements missing;
                 mm_extra = Api.Set.elements extra;
               })
