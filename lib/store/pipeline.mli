(** End-to-end measurement pipeline: synthetic distribution bytes in,
    populated store out. Every binary goes through the same steps as
    the paper's tool — parse the ELF, disassemble, build the call
    graph, resolve footprints across shared libraries — and packages
    aggregate per Section 2: footprints are unions over standalone
    executables, scripts inherit their interpreter package's
    footprint. *)

type analyzed = {
  store : Store.t;
  world : Lapis_analysis.Resolve.world;
  dist : Lapis_distro.Package.distribution;
}

val interpreter_package : Lapis_elf.Classify.interpreter -> string option
(** The package owning an interpreter (dash scripts -> "dash", python
    -> "python2.7", ...); [None] for interpreters outside the model. *)

type analysis_cache
(** Content-hash analysis cache: per-binary analysis results keyed by
    a digest of the ELF bytes. Hand the same cache to successive
    {!run}s over releases of an evolving world and only the binaries
    whose bytes changed are re-analyzed; because analysis is a pure
    function of the bytes, the incremental result is bit-identical to
    a from-scratch run. *)

val new_cache : unit -> analysis_cache
(** A fresh, empty cache. *)

val cache_size : analysis_cache -> int
(** Distinct ELF payloads the cache currently holds. *)

type config = {
  mode : Lapis_analysis.Binary.mode;
      (** per-function engine: the CFG dataflow default, or [Linear]
          for the control-flow-blind baseline the precision audit
          measures against *)
  cache : bool;
      (** key per-binary analysis by a digest of the ELF bytes, so
          byte-identical inputs are analyzed once and package-shipped
          copies of world libraries reuse the world's analysis. The
          resulting footprints are identical to an uncached run
          (checked by the test suite). *)
  domains : int option;
      (** cap on the domains used for the per-binary analysis fan-out
          ([None]: the runtime's recommended count; the loop degrades
          to sequential on single-core hosts). Aggregation and
          cross-library resolution always run sequentially. *)
  decode_fuel : int option;
      (** per-binary instruction-decode budget ([None]: the
          {!Lapis_analysis.Binary} default) *)
  shared_cache : analysis_cache option;
      (** carry this cache across runs (implies [cache = true]). Each
          distinct payload the run touches is counted once into the
          ["incremental:hits"] (analyzed by a previous run) or
          ["incremental:misses"] (analyzed by this run) Stage
          counters — the cross-release reuse ratio. *)
}

val default : config
(** Dataflow engine, caching on, automatic domain count, default
    fuel. Override single fields: [{ Pipeline.default with mode = Linear }]. *)

val run : ?config:config -> Lapis_distro.Package.distribution -> analyzed
(** Analyze a distribution under [config] (default: {!default}).

    Robustness: a binary that fails to parse — or whose analysis
    raises — is quarantined, not fatal: it is skipped and counted per
    error kind in [world.stats.rejects] (mirrored into the
    ["reject:<kind>"] Stage counters the bench JSON reports). A clean
    corpus reports zero rejects. *)

val quarantined : analyzed -> int
(** Total binaries the run rejected and skipped, summed over
    [world.stats.rejects]. Zero on a clean corpus. *)

type mismatch = {
  mm_package : string;
  mm_missing : Lapis_apidb.Api.t list;
      (** in the generator's ground truth, not recovered *)
  mm_extra : Lapis_apidb.Api.t list;
      (** recovered, but never planted (e.g. dead code leaking in) *)
}

val spot_check : analyzed -> mismatch list
(** The automated Section 2.3 spot check: compare the analyzer's
    ELF-derived package footprints against the generator's ground
    truth. An empty list means static analysis recovered every
    footprint exactly. *)
