(** Persistent snapshots of an analyzed world (the analyze-once /
    query-many layer). A snapshot serializes everything the query and
    metrics layers consume — package rows, binary rows with their
    footprints, popcon weights, and the pipeline's quarantine stats —
    into a versioned binary wire format:

    {v
      offset  size  field
      0       8     magic "LAPISNAP"
      8       4     format version (u32 LE)
      12      16    MD5 of the payload
      28      8     payload length (u64 LE)
      36      -     payload
    v}

    The payload is a flat sequence of zigzag-LEB128 varints, raw
    strings and IEEE-754 bit patterns; every multi-byte integer is
    little-endian. Loading re-derives the store's hash indexes from
    the rows, so a loaded store is indistinguishable from the one the
    pipeline built (the test suite checks metric-for-metric equality).

    Format 2 prefixes the rows with an {b API dictionary} — every
    distinct API in the snapshot, written once in a deterministic
    first-seen order — and encodes every API set (package
    requirement sets, binary footprints) as a {!Lapis_perf.Bitset}
    over that dictionary: one bit per dictionary entry instead of a
    re-serialized API per element. The dictionary order is a pure
    function of the rows, so decode → re-encode reproduces the file
    byte for byte. Format 1 files (element-wise sets) still load.

    Format 3 appends the {b temporal attribution} to every row: the
    init-phase and serving-phase API sets of each package
    ([pr_init]/[pr_serving]) and binary ([br_init]/[br_serving]),
    encoded as dictionary bitsets like every other set. Format 1 and
    2 files still load, with both phases defaulting to the row's full
    footprint — the correct conservative reading for a snapshot that
    predates the phase analysis.

    Decoding never raises: stale, truncated or corrupted files come
    back as a structured {!error}, following the taxonomy discipline
    of {!Lapis_elf.Reader}. The payload digest makes corruption
    detection O(n) before any structural decoding happens, and the
    [source_key] in the metadata keys the generator identity
    (config + seed) so a cache can tell a stale snapshot from a
    current one without regenerating anything. *)

open Lapis_apidb
module P = Lapis_distro.Package
module Footprint = Lapis_analysis.Footprint
module Classify = Lapis_elf.Classify

let magic = "LAPISNAP"

(* The version line shares one numbering space with the sibling
   formats: versions 1-3 and 6 are row snapshots decoded here (6 adds
   the evolution release to the metadata), version 4 is the query
   engine's mmap-able index image, version 5 is a delta snapshot that
   can only be decoded against its base (see [apply_delta]). *)
let format_version = 6
let delta_version = 5
let image_version = 4  (* owned by the query engine's mapped loader *)
let min_version = 1  (* oldest row format this build still reads *)
let header_len = 8 + 4 + 16 + 8

type meta = {
  version : int;
  seed : int;  (** generator seed the corpus came from *)
  n_packages : int;
  total_installs : int;
  source_key : string;
      (** hex digest of the generator identity (config + seed): the
          snapshot invalidation rule *)
  release : int;
      (** evolution release the world was at; 0 for formats that
          predate the living-distribution work (the only release they
          could have been written from) *)
}

type t = {
  meta : meta;
  store : Store.t;
  rejects : (string * int) list;  (** quarantine counters of the run *)
}

type error =
  | Not_snapshot
  | Unsupported_version of int
  | Truncated of string
  | Digest_mismatch
  | Corrupt of string
  | Io of string
  | Needs_base of string
  | Base_mismatch of string * string

let kind_name = function
  | Not_snapshot -> "not-snapshot"
  | Unsupported_version _ -> "unsupported-version"
  | Truncated _ -> "truncated"
  | Digest_mismatch -> "digest-mismatch"
  | Corrupt _ -> "corrupt"
  | Io _ -> "io"
  | Needs_base _ -> "needs-base"
  | Base_mismatch _ -> "base-mismatch"

let pp_error ppf = function
  | Not_snapshot -> Fmt.pf ppf "not a lapis snapshot (bad magic)"
  | Unsupported_version v ->
    Fmt.pf ppf "unsupported snapshot version %d (this build reads %d)" v
      format_version
  | Truncated what -> Fmt.pf ppf "truncated snapshot: %s" what
  | Digest_mismatch -> Fmt.pf ppf "payload digest mismatch (corrupted file)"
  | Corrupt what -> Fmt.pf ppf "corrupt snapshot: %s" what
  | Io msg -> Fmt.pf ppf "snapshot i/o error: %s" msg
  | Needs_base digest ->
    Fmt.pf ppf
      "delta snapshot: needs its base snapshot (digest %s) to decode"
      digest
  | Base_mismatch (expected, got) ->
    Fmt.pf ppf
      "delta snapshot: wrong base (delta expects digest %s, base has %s)"
      expected got

(* The key's release-0 spelling is frozen: every format 1-4 file on
   disk stores exactly this string for its world, so the default must
   keep reproducing it byte for byte. *)
let source_key ?(release = 0) ~seed ~n_packages ~total_installs () =
  let identity =
    if release = 0 then
      Printf.sprintf "lapis-generator:%d:%d:%d" seed n_packages
        total_installs
    else
      Printf.sprintf "lapis-generator:%d:%d:%d:r%d" seed n_packages
        total_installs release
  in
  Digest.to_hex (Digest.string identity)

let of_analyzed (a : Pipeline.analyzed) : t =
  let dist = a.Pipeline.dist in
  let store = a.Pipeline.store in
  {
    meta =
      {
        version = format_version;
        seed = dist.P.seed;
        n_packages = store.Store.n_packages;
        total_installs = dist.P.total_installs;
        (* keyed by the *requested* package count, not the actual row
           count: small corpora are padded up to the generator's fixed
           roster, and [matches] only sees the requested count in the
           config it is handed *)
        source_key =
          source_key ~release:dist.P.release ~seed:dist.P.seed
            ~n_packages:dist.P.n_requested
            ~total_installs:dist.P.total_installs ();
        release = dist.P.release;
      };
    store;
    rejects =
      a.Pipeline.world.Lapis_analysis.Resolve.stats
        .Lapis_analysis.Resolve.rejects;
  }

let matches ?(release = 0) (t : t) (config : Lapis_distro.Generator.config) =
  t.meta.source_key
  = source_key ~release ~seed:config.Lapis_distro.Generator.seed
      ~n_packages:config.Lapis_distro.Generator.n_packages
      ~total_installs:config.Lapis_distro.Generator.total_installs ()

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

(* Unsigned LEB128 over the native int's bit pattern. *)
let w_varint b n =
  let n = ref n in
  let stop = ref false in
  while not !stop do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char b (Char.chr byte);
      stop := true
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

(* Zigzag so small negative ints stay small on the wire. *)
let w_int b i = w_varint b ((i lsl 1) lxor (i asr 62))

let w_str b s =
  w_varint b (String.length s);
  Buffer.add_string b s

let w_float b f =
  let scratch = Bytes.create 8 in
  Bytes.set_int64_le scratch 0 (Int64.bits_of_float f);
  Buffer.add_bytes b scratch

let w_bool b v = Buffer.add_char b (if v then '\001' else '\000')

let w_list b w items =
  w_varint b (List.length items);
  List.iter (w b) items

let w_digest b (d : Digest.t) =
  (* a Digest.t is exactly 16 raw bytes *)
  Buffer.add_string b (d : string)

let w_api b = function
  | Api.Syscall nr ->
    Buffer.add_char b '\000';
    w_int b nr
  | Api.Vop (v, code) ->
    Buffer.add_char b '\001';
    Buffer.add_char b
      (match v with Api.Ioctl -> '\000' | Api.Fcntl -> '\001' | Api.Prctl -> '\002');
    w_int b code
  | Api.Pseudo_file path ->
    Buffer.add_char b '\002';
    w_str b path
  | Api.Libc_sym name ->
    Buffer.add_char b '\003';
    w_str b name

(* Format 2 dictionary: every API in the snapshot, interned in the
   order the writer meets the sets (packages first, then binaries,
   each set in [Api.Set] order). That order is a pure function of the
   rows, which is what makes decode -> re-encode byte-identical. *)
type dict = { d_apis : Api.t array; d_ids : int Api.Tbl.t }

let build_dict (packages : Store.pkg_row list) (bins : Store.bin_row list) :
    dict =
  let d_ids = Api.Tbl.create 4096 in
  let rev = ref [] in
  let n = ref 0 in
  let intern api =
    if not (Api.Tbl.mem d_ids api) then begin
      Api.Tbl.add d_ids api !n;
      incr n;
      rev := api :: !rev
    end
  in
  let set s = Api.Set.iter intern s in
  List.iter
    (fun (p : Store.pkg_row) ->
      set p.Store.pr_apis;
      set p.Store.pr_apis_elf;
      set p.Store.pr_init;
      set p.Store.pr_serving)
    packages;
  List.iter
    (fun (r : Store.bin_row) ->
      set r.Store.br_direct.Footprint.apis;
      set r.Store.br_resolved.Footprint.apis;
      set r.Store.br_init;
      set r.Store.br_serving)
    bins;
  { d_apis = Array.of_list (List.rev !rev); d_ids }

let w_dict b (dict : dict) =
  w_varint b (Array.length dict.d_apis);
  Array.iter (w_api b) dict.d_apis

(* A set on the format-2 wire is its bitset over the dictionary
   universe, length-prefixed ({!Lapis_perf.Bitset.to_bytes} length is
   fixed by the universe, but the prefix keeps the row format
   self-delimiting). *)
let w_api_set_packed b (dict : dict) set =
  let bits = Lapis_perf.Bitset.create (Array.length dict.d_apis) in
  Api.Set.iter (fun a -> Lapis_perf.Bitset.add bits (Api.Tbl.find dict.d_ids a)) set;
  w_str b (Lapis_perf.Bitset.to_bytes bits)

let w_footprint b dict (fp : Footprint.t) =
  w_api_set_packed b dict fp.Footprint.apis;
  w_varint b (Footprint.String_set.cardinal fp.Footprint.imports);
  Footprint.String_set.iter (w_str b) fp.Footprint.imports;
  w_int b fp.Footprint.unresolved_sites;
  w_int b fp.Footprint.syscall_sites

let w_class b = function
  | Classify.Elf_static -> Buffer.add_char b '\000'
  | Classify.Elf_dynamic -> Buffer.add_char b '\001'
  | Classify.Elf_shared_lib -> Buffer.add_char b '\002'
  | Classify.Script interp ->
    Buffer.add_char b '\003';
    (match interp with
     | Classify.Dash -> Buffer.add_char b '\000'
     | Classify.Bash -> Buffer.add_char b '\001'
     | Classify.Python -> Buffer.add_char b '\002'
     | Classify.Perl -> Buffer.add_char b '\003'
     | Classify.Ruby -> Buffer.add_char b '\004'
     | Classify.Other_interp s ->
       Buffer.add_char b '\005';
       w_str b s)
  | Classify.Data -> Buffer.add_char b '\004'

let w_pkg_row dict b (p : Store.pkg_row) =
  w_str b p.Store.pr_name;
  w_int b p.Store.pr_installs;
  w_float b p.Store.pr_prob;
  w_list b w_str p.Store.pr_deps;
  w_bool b p.Store.pr_essential;
  w_api_set_packed b dict p.Store.pr_apis;
  w_api_set_packed b dict p.Store.pr_apis_elf;
  w_api_set_packed b dict p.Store.pr_init;
  w_api_set_packed b dict p.Store.pr_serving

let w_bin_row dict b (r : Store.bin_row) =
  w_str b r.Store.br_path;
  w_str b r.Store.br_package;
  w_class b r.Store.br_class;
  w_digest b r.Store.br_digest;
  w_footprint b dict r.Store.br_direct;
  w_footprint b dict r.Store.br_resolved;
  w_api_set_packed b dict r.Store.br_init;
  w_api_set_packed b dict r.Store.br_serving

(* Frame a finished payload with the shared header discipline. *)
let frame ~version payload =
  let out = Buffer.create (header_len + String.length payload) in
  Buffer.add_string out magic;
  let scratch = Bytes.create 8 in
  Bytes.set_int32_le scratch 0 (Int32.of_int version);
  Buffer.add_subbytes out scratch 0 4;
  Buffer.add_string out (Digest.string payload);
  Bytes.set_int64_le scratch 0 (Int64.of_int (String.length payload));
  Buffer.add_bytes out scratch;
  Buffer.add_string out payload;
  Buffer.contents out

let w_meta b (m : meta) =
  w_int b m.seed;
  w_int b m.n_packages;
  w_int b m.total_installs;
  w_str b m.source_key;
  w_int b m.release

let to_string (t : t) : string =
  let b = Buffer.create (1 lsl 20) in
  w_meta b t.meta;
  let packages = Array.to_list t.store.Store.packages in
  let dict = build_dict packages t.store.Store.bins in
  w_dict b dict;
  w_list b (w_pkg_row dict) packages;
  w_list b (w_bin_row dict) t.store.Store.bins;
  w_list b
    (fun b (kind, n) ->
      w_str b kind;
      w_int b n)
    t.rejects;
  frame ~version:format_version (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of error

type cursor = { buf : string; mutable pos : int; stop : int }

let need c n what =
  if c.pos + n > c.stop then raise (Fail (Truncated what))

let r_byte c what =
  need c 1 what;
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_varint c what =
  let shift = ref 0 and acc = ref 0 and stop = ref false in
  while not !stop do
    if !shift > 62 then raise (Fail (Corrupt ("varint overflow in " ^ what)));
    let byte = r_byte c what in
    acc := !acc lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then stop := true
  done;
  !acc

let r_int c what =
  let z = r_varint c what in
  (z lsr 1) lxor (- (z land 1))

let r_str c what =
  let n = r_varint c what in
  need c n what;
  let s = String.sub c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let r_float c what =
  need c 8 what;
  let v = Int64.float_of_bits (String.get_int64_le c.buf c.pos) in
  c.pos <- c.pos + 8;
  v

let r_bool c what = r_byte c what <> 0

(* Read exactly [n] elements left to right — the cursor is stateful,
   so the evaluation order must be the wire order. *)
let r_list c r what =
  let n = r_varint c what in
  let rec go acc k = if k = 0 then List.rev acc else go (r c :: acc) (k - 1) in
  go [] n

let r_digest c what : Digest.t =
  need c 16 what;
  let s = String.sub c.buf c.pos 16 in
  c.pos <- c.pos + 16;
  s

let r_api c =
  match r_byte c "api" with
  | 0 -> Api.Syscall (r_int c "api.syscall")
  | 1 ->
    let v =
      match r_byte c "api.vector" with
      | 0 -> Api.Ioctl
      | 1 -> Api.Fcntl
      | 2 -> Api.Prctl
      | t -> raise (Fail (Corrupt (Printf.sprintf "unknown vector tag %d" t)))
    in
    Api.Vop (v, r_int c "api.vop")
  | 2 -> Api.Pseudo_file (r_str c "api.pseudo")
  | 3 -> Api.Libc_sym (r_str c "api.libc")
  | t -> raise (Fail (Corrupt (Printf.sprintf "unknown api tag %d" t)))

(* Format 1 sets: element-wise. *)
let r_api_set c =
  let n = r_varint c "api-set" in
  let rec go acc k = if k = 0 then acc else go (Api.Set.add (r_api c) acc) (k - 1) in
  go Api.Set.empty n

(* Format 2 sets: a bitset over the dictionary read earlier. *)
let r_api_set_packed (dict : Api.t array) c =
  let bytes = r_str c "api-set.bits" in
  match Lapis_perf.Bitset.of_bytes (Array.length dict) bytes with
  | Error msg -> raise (Fail (Corrupt ("api-set bitset: " ^ msg)))
  | Ok bits ->
    Lapis_perf.Bitset.fold (fun id acc -> Api.Set.add dict.(id) acc) bits
      Api.Set.empty

let r_footprint read_set c : Footprint.t =
  let apis = read_set c in
  let n_imports = r_varint c "imports" in
  let rec go acc k =
    if k = 0 then acc
    else go (Footprint.String_set.add (r_str c "import") acc) (k - 1)
  in
  let imports = go Footprint.String_set.empty n_imports in
  let unresolved_sites = r_int c "unresolved-sites" in
  let syscall_sites = r_int c "syscall-sites" in
  { Footprint.apis; imports; unresolved_sites; syscall_sites }

let r_class c =
  match r_byte c "class" with
  | 0 -> Classify.Elf_static
  | 1 -> Classify.Elf_dynamic
  | 2 -> Classify.Elf_shared_lib
  | 3 ->
    Classify.Script
      (match r_byte c "interpreter" with
       | 0 -> Classify.Dash
       | 1 -> Classify.Bash
       | 2 -> Classify.Python
       | 3 -> Classify.Perl
       | 4 -> Classify.Ruby
       | 5 -> Classify.Other_interp (r_str c "interpreter.other")
       | t ->
         raise (Fail (Corrupt (Printf.sprintf "unknown interpreter tag %d" t))))
  | 4 -> Classify.Data
  | t -> raise (Fail (Corrupt (Printf.sprintf "unknown class tag %d" t)))

(* Pre-format-3 rows carry no temporal attribution: both phases
   default to the row's full footprint, the conservative reading. *)
let r_pkg_row ~phased read_set c : Store.pkg_row =
  let pr_name = r_str c "pkg.name" in
  let pr_installs = r_int c "pkg.installs" in
  let pr_prob = r_float c "pkg.prob" in
  let pr_deps = r_list c (fun c -> r_str c "pkg.dep") "pkg.deps" in
  let pr_essential = r_bool c "pkg.essential" in
  let pr_apis = read_set c in
  let pr_apis_elf = read_set c in
  let pr_init = if phased then read_set c else pr_apis in
  let pr_serving = if phased then read_set c else pr_apis in
  { Store.pr_name; pr_installs; pr_prob; pr_deps; pr_essential; pr_apis;
    pr_apis_elf; pr_init; pr_serving }

let r_bin_row ~phased read_set c : Store.bin_row =
  let br_path = r_str c "bin.path" in
  let br_package = r_str c "bin.package" in
  let br_class = r_class c in
  let br_digest = r_digest c "bin.digest" in
  let br_direct = r_footprint read_set c in
  let br_resolved = r_footprint read_set c in
  let br_init =
    if phased then read_set c else br_resolved.Footprint.apis
  in
  let br_serving =
    if phased then read_set c else br_resolved.Footprint.apis
  in
  { Store.br_path; br_package; br_class; br_digest; br_direct; br_resolved;
    br_init; br_serving }

(* Validate the framing shared by every version — magic, version
   range, payload digest — and hand back a cursor over the payload.
   Raises [Fail]; callers route on the returned version. *)
let open_payload (s : string) : cursor * int =
  (* judge the magic on whatever prefix is present, so data from a
     different format reads as [Not_snapshot] even when it is also
     shorter than our header, and only genuine prefixes of a real
     snapshot read as [Truncated] *)
  let prefix = min 8 (String.length s) in
  if String.sub s 0 prefix <> String.sub magic 0 prefix then
    raise (Fail Not_snapshot);
  if String.length s < header_len then raise (Fail (Truncated "header"));
  let version = Int32.to_int (String.get_int32_le s 8) in
  (* index images share the magic but not this header layout, so they
     must be refused on the version alone — reading our digest/length
     fields from one would misreport the damage *)
  if version < min_version || version > format_version
     || version = image_version
  then raise (Fail (Unsupported_version version));
  let stored_digest = String.sub s 12 16 in
  let payload_len = Int64.to_int (String.get_int64_le s 28) in
  if payload_len < 0 || header_len + payload_len > String.length s then
    raise (Fail (Truncated "payload"));
  if header_len + payload_len < String.length s then
    raise (Fail (Corrupt "trailing bytes after payload"));
  if Digest.substring s header_len payload_len <> stored_digest then
    raise (Fail Digest_mismatch);
  ({ buf = s; pos = header_len; stop = header_len + payload_len }, version)

type r_meta = {
  rm_seed : int;
  rm_n_packages : int;
  rm_total_installs : int;
  rm_source_key : string;
  rm_release : int;
}

let r_meta ~version c =
  let rm_seed = r_int c "meta.seed" in
  let rm_n_packages = r_int c "meta.n-packages" in
  let rm_total_installs = r_int c "meta.total-installs" in
  let rm_source_key = r_str c "meta.source-key" in
  (* pre-format-6 files predate the living-distribution work, so the
     only release they can hold is 0 — the correct default *)
  let rm_release = if version >= 5 then r_int c "meta.release" else 0 in
  { rm_seed; rm_n_packages; rm_total_installs; rm_source_key; rm_release }

let of_string (s : string) : (t, error) result =
  try
    let c, version = open_payload s in
    let m = r_meta ~version c in
    if version = delta_version then
      (* a delta cannot be decoded standalone: report which base it
         wants so the caller can fetch it *)
      raise (Fail (Needs_base (Digest.to_hex (r_digest c "delta.base"))));
    let seed = m.rm_seed in
    let n_packages = m.rm_n_packages in
    let total_installs = m.rm_total_installs in
    let skey = m.rm_source_key in
    let read_set =
      if version >= 2 then begin
        let dict =
          Array.of_list (r_list c r_api "api-dictionary")
        in
        r_api_set_packed dict
      end
      else r_api_set
    in
    let phased = version >= 3 in
    let packages = r_list c (r_pkg_row ~phased read_set) "packages" in
    let bins = r_list c (r_bin_row ~phased read_set) "binaries" in
    let rejects =
      r_list c
        (fun c ->
          let kind = r_str c "reject.kind" in
          let n = r_int c "reject.count" in
          (kind, n))
        "rejects"
    in
    if c.pos <> c.stop then raise (Fail (Corrupt "payload underrun"));
    if List.length packages <> n_packages then
      raise (Fail (Corrupt "package count disagrees with metadata"));
    let store = Store.build ~packages ~bins ~total_installs in
    Ok
      {
        meta =
          { version; seed; n_packages; total_installs; source_key = skey;
            release = m.rm_release };
        store;
        rejects;
      }
  with Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Delta snapshots (format 5)                                          *)
(* ------------------------------------------------------------------ *)

(* A delta records a new world against a base snapshot it names by
   digest (MD5 of the base's full serialization). Both row sequences
   are written as positional instruction streams — [keep i] reuses the
   base's i-th row verbatim, [new row] carries a full row — so an
   arbitrary mix of unchanged, changed, added, removed and reordered
   rows reproduces exactly, and [to_string (apply_delta base d)] is
   byte-identical to the serialization of the world the delta was made
   from. Rows a release leaves untouched dominate, so a delta is
   orders of magnitude smaller than the full snapshot. The delta
   carries its own API dictionary covering only the rows it ships. *)

let tag_keep = '\000'
let tag_new = '\001'

let to_delta_string ~(base : t) (cur : t) : string =
  let base_pkgs = Array.to_list base.store.Store.packages in
  let cur_pkgs = Array.to_list cur.store.Store.packages in
  let base_bins = base.store.Store.bins in
  let cur_bins = cur.store.Store.bins in
  (* Row identity is serialization equality under one shared
     dictionary: bitsets of equal sets are equal bytes, so this is
     exactly field-for-field row equality (structural [=] on the
     balanced-tree sets would be shape-sensitive). *)
  let cmp_dict = build_dict (base_pkgs @ cur_pkgs) (base_bins @ cur_bins) in
  let row_bytes w row =
    let b = Buffer.create 256 in
    w cmp_dict b row;
    Buffer.contents b
  in
  let index rows w =
    let h = Hashtbl.create (2 * List.length rows) in
    List.iteri
      (fun i r ->
        let k = row_bytes w r in
        if not (Hashtbl.mem h k) then Hashtbl.add h k i)
      rows;
    h
  in
  let pkg_index = index base_pkgs w_pkg_row in
  let bin_index = index base_bins w_bin_row in
  let keyed rows w = List.map (fun r -> (r, row_bytes w r)) rows in
  let cur_pkg_keys = keyed cur_pkgs w_pkg_row in
  let cur_bin_keys = keyed cur_bins w_bin_row in
  let fresh idx keys =
    List.filter_map
      (fun (r, k) -> if Hashtbl.mem idx k then None else Some r)
      keys
  in
  let dict = build_dict (fresh pkg_index cur_pkg_keys) (fresh bin_index cur_bin_keys) in
  let b = Buffer.create (1 lsl 16) in
  w_meta b cur.meta;
  w_digest b (Digest.string (to_string base));
  w_dict b dict;
  let w_instr idx w b (r, key) =
    match Hashtbl.find_opt idx key with
    | Some i ->
      Buffer.add_char b tag_keep;
      w_varint b i
    | None ->
      Buffer.add_char b tag_new;
      w dict b r
  in
  w_list b (w_instr pkg_index w_pkg_row) cur_pkg_keys;
  w_list b (w_instr bin_index w_bin_row) cur_bin_keys;
  w_list b
    (fun b (kind, n) ->
      w_str b kind;
      w_int b n)
    cur.rejects;
  frame ~version:delta_version (Buffer.contents b)

let apply_delta ~(base : t) (s : string) : (t, error) result =
  try
    let c, version = open_payload s in
    if version <> delta_version then
      raise (Fail (Unsupported_version version));
    let m = r_meta ~version c in
    let want = r_digest c "delta.base-digest" in
    let have = Digest.string (to_string base) in
    if want <> have then
      raise (Fail (Base_mismatch (Digest.to_hex want, Digest.to_hex have)));
    let dict = Array.of_list (r_list c r_api "delta.api-dictionary") in
    let read_set = r_api_set_packed dict in
    let base_pkgs = base.store.Store.packages in
    let base_bins = Array.of_list base.store.Store.bins in
    let r_instr arr r_new what c =
      match r_byte c what with
      | 0 ->
        let i = r_varint c what in
        if i >= Array.length arr then
          raise
            (Fail
               (Corrupt
                  (Printf.sprintf "%s: keep index %d out of range (base has %d)"
                     what i (Array.length arr))));
        arr.(i)
      | 1 -> r_new c
      | t ->
        raise
          (Fail (Corrupt (Printf.sprintf "unknown %s instruction tag %d" what t)))
    in
    let packages =
      r_list c
        (r_instr base_pkgs (r_pkg_row ~phased:true read_set) "delta.pkg")
        "delta.packages"
    in
    let bins =
      r_list c
        (r_instr base_bins (r_bin_row ~phased:true read_set) "delta.bin")
        "delta.binaries"
    in
    let rejects =
      r_list c
        (fun c ->
          let kind = r_str c "reject.kind" in
          let n = r_int c "reject.count" in
          (kind, n))
        "delta.rejects"
    in
    if c.pos <> c.stop then raise (Fail (Corrupt "payload underrun"));
    if List.length packages <> m.rm_n_packages then
      raise (Fail (Corrupt "package count disagrees with metadata"));
    let store =
      Store.build ~packages ~bins ~total_installs:m.rm_total_installs
    in
    Ok
      {
        meta =
          { version = format_version; seed = m.rm_seed;
            n_packages = m.rm_n_packages;
            total_installs = m.rm_total_installs;
            source_key = m.rm_source_key; release = m.rm_release };
        store;
        rejects;
      }
  with Fail e -> Error e

let save_delta path ~(base : t) (cur : t) : (unit, error) result =
  match
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc (to_delta_string ~base cur))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

let load_delta path ~(base : t) : (t, error) result =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | s -> Lapis_perf.Stage.time "snapshot-load" (fun () -> apply_delta ~base s)
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (path ^ ": unexpected end of file"))

let save path (t : t) : (unit, error) result =
  match
    let oc = open_out_bin path in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        output_string oc (to_string t))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

let load path : (t, error) result =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | s -> Lapis_perf.Stage.time "snapshot-load" (fun () -> of_string s)
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (path ^ ": unexpected end of file"))

(* Peek at a file's magic + version without decoding: the router that
   lets the CLI send format-4 index images (which share the LAPISNAP
   header but are not row snapshots) to the query engine's mapped
   loader instead of this module's decoder. *)
let file_version path : (int, error) result =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
        really_input_string ic (min 12 (in_channel_length ic)))
  with
  | s ->
    let prefix = min 8 (String.length s) in
    if String.sub s 0 prefix <> String.sub magic 0 prefix then
      Error Not_snapshot
    else if String.length s < 12 then Error (Truncated "header")
    else Ok (Int32.to_int (String.get_int32_le s 8))
  | exception Sys_error msg -> Error (Io msg)
  | exception End_of_file -> Error (Io (path ^ ": unexpected end of file"))

(* The primitive codecs, re-exported for sibling wire formats (the
   query engine's format-4 image stores its metadata section in the
   same zigzag-LEB128 encoding). *)
module Wire = struct
  type nonrec cursor = cursor = { buf : string; mutable pos : int; stop : int }

  exception Fail = Fail

  let w_varint = w_varint
  let w_int = w_int
  let w_str = w_str
  let w_float = w_float
  let w_api = w_api
  let cursor ?(pos = 0) ?stop buf =
    { buf; pos; stop = Option.value ~default:(String.length buf) stop }
  let r_byte = r_byte
  let r_varint = r_varint
  let r_int = r_int
  let r_str = r_str
  let r_float = r_float
  let r_api = r_api
end
