(** Versioned binary snapshots of an analyzed world.

    A snapshot captures everything downstream layers consume — the
    {!Store.t} rows (packages, binaries, footprints, popcon weights)
    and the pipeline's quarantine counters — so the expensive
    analyze phase runs once and every later [lapis query] /
    [lapis serve] / report invocation starts from a file load.

    Wire format (all integers little-endian):

    {v
      offset  size  field
      0       8     magic "LAPISNAP"
      8       4     format version (u32)
      12      16    MD5 of the payload
      28      8     payload length (u64)
      36      -     payload (zigzag-LEB128 varints, raw strings,
                    IEEE-754 float bit patterns)
    v}

    Decoding never raises: anything other than a well-formed
    current-version snapshot comes back as a structured {!error}
    (same taxonomy discipline as {!Lapis_elf.Reader}). *)

val magic : string

val format_version : int
(** Version written for full row snapshots (currently 6, which adds
    the evolution release to the metadata; versions 1–3 still load). *)

val delta_version : int
(** Version of delta snapshots (5): decodable only against the base
    snapshot they name by digest — see {!apply_delta}. *)

val image_version : int
(** Version owned by the query engine's mmap-able index image (4):
    shares the header discipline but is not decoded by this module. *)

type meta = {
  version : int;  (** format version the file was written with *)
  seed : int;  (** generator seed the corpus came from *)
  n_packages : int;  (** actual package rows in the store *)
  total_installs : int;
  source_key : string;
      (** hex digest of the generator identity (requested package
          count, seed, popcon total, evolution release): the snapshot
          invalidation rule — regenerate when the key a config would
          produce differs from the one stored. Keyed by the
          {e requested} count because small corpora are padded up to
          the generator's fixed roster. *)
  release : int;
      (** evolution release the snapshotted world was at; 0 for files
          written before format 6, the only release they could hold *)
}

type t = {
  meta : meta;
  store : Store.t;
  rejects : (string * int) list;
      (** quarantine counters of the producing run, [(kind, count)] *)
}

type error =
  | Not_snapshot  (** magic bytes absent: not a snapshot file at all *)
  | Unsupported_version of int  (** written by an incompatible format *)
  | Truncated of string  (** ran out of bytes decoding the named field *)
  | Digest_mismatch  (** payload bytes do not match the stored MD5 *)
  | Corrupt of string  (** structurally invalid despite a good digest *)
  | Io of string  (** file system error from {!save}/{!load} *)
  | Needs_base of string
      (** a delta snapshot reached a standalone decoder; carries the
          hex digest of the base it needs *)
  | Base_mismatch of string * string
      (** delta applied against the wrong base:
          [(expected_hex, got_hex)] *)

val kind_name : error -> string
(** Stable machine-readable kind, mirroring the reader taxonomy
    (["not-snapshot"], ["truncated"], ...). *)

val pp_error : Format.formatter -> error -> unit

val source_key :
  ?release:int ->
  seed:int ->
  n_packages:int ->
  total_installs:int ->
  unit ->
  string
(** The invalidation key for a generator identity. [release] (default
    0) is the evolution epoch; the release-0 key is byte-identical to
    the key this build always produced, so every existing format 1–4
    file keeps matching its world. *)

val of_analyzed : Pipeline.analyzed -> t
(** Snapshot a pipeline result (shares the store, copies nothing). *)

val matches : ?release:int -> t -> Lapis_distro.Generator.config -> bool
(** Would [config], evolved to [release] (default 0), regenerate the
    world this snapshot holds? False means the snapshot is stale for
    that configuration — in particular, an evolved world never matches
    its release-0 ancestor. *)

val to_string : t -> string
(** Serialize to the wire format. *)

val of_string : string -> (t, error) result
(** Decode and rebuild the store (hash indexes are re-derived, so the
    result is indistinguishable from the pipeline's own store). Total:
    corrupt input yields [Error], never an exception. *)

val save : string -> t -> (unit, error) result
val load : string -> (t, error) result
(** [load] times itself under the ["snapshot-load"] {!Lapis_perf.Stage}. *)

val to_delta_string : base:t -> t -> string
(** Serialize [cur] as a format-5 delta against [base]: the base's
    digest plus positional row instructions ([keep i] for rows the
    base already holds, full rows otherwise). Applying the delta to
    the same base reproduces [cur]'s serialization byte for byte;
    rows untouched between releases make the delta orders of
    magnitude smaller than {!to_string}. *)

val apply_delta : base:t -> string -> (t, error) result
(** Decode a format-5 delta against its base. Total like
    {!of_string}; a wrong base yields [Base_mismatch], a non-delta
    input [Unsupported_version], and out-of-range keep instructions
    [Corrupt]. *)

val save_delta : string -> base:t -> t -> (unit, error) result

val load_delta : string -> base:t -> (t, error) result
(** [load_delta] times itself under ["snapshot-load"], like {!load}. *)

val file_version : string -> (int, error) result
(** Read just the magic and version word of a file — the router that
    distinguishes decode-and-build row snapshots (versions 1–3, 6)
    from format-4 index images (loaded by the query engine's mapped
    loader) and format-5 deltas (decoded by {!apply_delta} against
    their base). *)

(** The primitive wire codecs (zigzag-LEB128 varints, length-prefixed
    strings, IEEE-754 float bit patterns, API tags), shared with the
    format-4 index image's metadata sections. Readers raise {!Wire.Fail}
    carrying the same structured {!error} taxonomy; writers append to a
    [Buffer.t]. *)
module Wire : sig
  type cursor = { buf : string; mutable pos : int; stop : int }

  exception Fail of error

  val w_varint : Buffer.t -> int -> unit
  val w_int : Buffer.t -> int -> unit
  val w_str : Buffer.t -> string -> unit
  val w_float : Buffer.t -> float -> unit
  val w_api : Buffer.t -> Lapis_apidb.Api.t -> unit

  val cursor : ?pos:int -> ?stop:int -> string -> cursor
  (** A cursor over [buf] from [pos] (default 0) to [stop] (default
      the end). *)

  val r_byte : cursor -> string -> int
  val r_varint : cursor -> string -> int
  val r_int : cursor -> string -> int
  val r_str : cursor -> string -> string
  val r_float : cursor -> string -> float
  val r_api : cursor -> Lapis_apidb.Api.t
end
