(** Versioned binary snapshots of an analyzed world.

    A snapshot captures everything downstream layers consume — the
    {!Store.t} rows (packages, binaries, footprints, popcon weights)
    and the pipeline's quarantine counters — so the expensive
    analyze phase runs once and every later [lapis query] /
    [lapis serve] / report invocation starts from a file load.

    Wire format (all integers little-endian):

    {v
      offset  size  field
      0       8     magic "LAPISNAP"
      8       4     format version (u32)
      12      16    MD5 of the payload
      28      8     payload length (u64)
      36      -     payload (zigzag-LEB128 varints, raw strings,
                    IEEE-754 float bit patterns)
    v}

    Decoding never raises: anything other than a well-formed
    current-version snapshot comes back as a structured {!error}
    (same taxonomy discipline as {!Lapis_elf.Reader}). *)

val magic : string
val format_version : int

type meta = {
  version : int;  (** format version the file was written with *)
  seed : int;  (** generator seed the corpus came from *)
  n_packages : int;  (** actual package rows in the store *)
  total_installs : int;
  source_key : string;
      (** hex digest of the generator identity (requested package
          count, seed, popcon total): the snapshot invalidation rule —
          regenerate when the key a config would produce differs from
          the one stored. Keyed by the {e requested} count because
          small corpora are padded up to the generator's fixed
          roster. *)
}

type t = {
  meta : meta;
  store : Store.t;
  rejects : (string * int) list;
      (** quarantine counters of the producing run, [(kind, count)] *)
}

type error =
  | Not_snapshot  (** magic bytes absent: not a snapshot file at all *)
  | Unsupported_version of int  (** written by an incompatible format *)
  | Truncated of string  (** ran out of bytes decoding the named field *)
  | Digest_mismatch  (** payload bytes do not match the stored MD5 *)
  | Corrupt of string  (** structurally invalid despite a good digest *)
  | Io of string  (** file system error from {!save}/{!load} *)

val kind_name : error -> string
(** Stable machine-readable kind, mirroring the reader taxonomy
    (["not-snapshot"], ["truncated"], ...). *)

val pp_error : Format.formatter -> error -> unit

val source_key : seed:int -> n_packages:int -> total_installs:int -> string
(** The invalidation key for a generator identity. *)

val of_analyzed : Pipeline.analyzed -> t
(** Snapshot a pipeline result (shares the store, copies nothing). *)

val matches : t -> Lapis_distro.Generator.config -> bool
(** Would [config] regenerate the world this snapshot holds? False
    means the snapshot is stale for that configuration. *)

val to_string : t -> string
(** Serialize to the wire format. *)

val of_string : string -> (t, error) result
(** Decode and rebuild the store (hash indexes are re-derived, so the
    result is indistinguishable from the pipeline's own store). Total:
    corrupt input yields [Error], never an exception. *)

val save : string -> t -> (unit, error) result
val load : string -> (t, error) result
(** [load] times itself under the ["snapshot-load"] {!Lapis_perf.Stage}. *)

val file_version : string -> (int, error) result
(** Read just the magic and version word of a file — the router that
    distinguishes decode-and-build row snapshots (versions 1–3) from
    format-4 index images, which share the header discipline but are
    loaded by the query engine's mapped loader. *)

(** The primitive wire codecs (zigzag-LEB128 varints, length-prefixed
    strings, IEEE-754 float bit patterns, API tags), shared with the
    format-4 index image's metadata sections. Readers raise {!Wire.Fail}
    carrying the same structured {!error} taxonomy; writers append to a
    [Buffer.t]. *)
module Wire : sig
  type cursor = { buf : string; mutable pos : int; stop : int }

  exception Fail of error

  val w_varint : Buffer.t -> int -> unit
  val w_int : Buffer.t -> int -> unit
  val w_str : Buffer.t -> string -> unit
  val w_float : Buffer.t -> float -> unit
  val w_api : Buffer.t -> Lapis_apidb.Api.t -> unit

  val cursor : ?pos:int -> ?stop:int -> string -> cursor
  (** A cursor over [buf] from [pos] (default 0) to [stop] (default
      the end). *)

  val r_byte : cursor -> string -> int
  val r_varint : cursor -> string -> int
  val r_int : cursor -> string -> int
  val r_str : cursor -> string -> string
  val r_float : cursor -> string -> float
  val r_api : cursor -> Lapis_apidb.Api.t
end
