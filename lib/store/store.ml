(** In-memory relational store over the analysis results — the OCaml
    replacement for the paper's PostgreSQL database (Section 7). Rows
    exist for packages and binaries; the API-dependents index supports
    the recursive aggregation queries behind every experiment. *)

open Lapis_apidb
module Footprint = Lapis_analysis.Footprint

type bin_row = {
  br_path : string;
  br_package : string;
  br_class : Lapis_elf.Classify.t;
  br_digest : Digest.t;  (** MD5 of the file bytes, the snapshot-lookup key *)
  br_direct : Footprint.t;  (** intra-binary footprint *)
  br_resolved : Footprint.t;  (** after cross-library closure *)
  br_init : Api.Set.t;  (** APIs requestable during initialization *)
  br_serving : Api.Set.t;
      (** APIs requestable while serving; [br_init] and [br_serving]
          partition [br_resolved.apis] with overlap — their union is
          exactly it, and phase-agnostic binaries carry it in both *)
}

type pkg_row = {
  pr_name : string;
  pr_installs : int;
  pr_prob : float;  (** install probability from popcon counts *)
  pr_deps : string list;
  pr_essential : bool;
  pr_apis : Api.Set.t;  (** package footprint incl. script inheritance *)
  pr_apis_elf : Api.Set.t;  (** footprint from its own ELF executables only *)
  pr_init : Api.Set.t;  (** init-phase slice of [pr_apis] *)
  pr_serving : Api.Set.t;
      (** serving-phase slice of [pr_apis]; the union of the two is
          exactly [pr_apis] (script-inherited APIs count as both) *)
}

type t = {
  packages : pkg_row array;
  pkg_index : (string, int) Hashtbl.t;
  bins : bin_row list;
  api_dependents : int list Api.Tbl.t;  (** api -> indexes of packages *)
  total_installs : int;
  n_packages : int;
}

let find t name = Hashtbl.find_opt t.pkg_index name |> Option.map (fun i -> t.packages.(i))

let package_names t = Array.to_list (Array.map (fun p -> p.pr_name) t.packages)

let dependents t api =
  Option.value ~default:[] (Api.Tbl.find_opt t.api_dependents api)

let dependent_rows t api = List.map (fun i -> t.packages.(i)) (dependents t api)

(* Every API with at least one dependent package. *)
let used_apis t =
  Api.Tbl.fold (fun api _ acc -> api :: acc) t.api_dependents []

let iter_packages t f = Array.iter f t.packages

let build ~(packages : pkg_row list) ~(bins : bin_row list) ~total_installs =
  let arr = Array.of_list packages in
  let idx = Hashtbl.create (Array.length arr) in
  Array.iteri (fun i p -> Hashtbl.replace idx p.pr_name i) arr;
  (* Accumulate into list refs so each (package, api) pair costs one
     table lookup instead of a find-and-replace pair: this loop runs
     over every API of every package and dominates store build time. *)
  let acc_tbl = Api.Tbl.create 4096 in
  Array.iteri
    (fun i p ->
      Api.Set.iter
        (fun api ->
          match Api.Tbl.find_opt acc_tbl api with
          | Some r -> r := i :: !r
          | None -> Api.Tbl.add acc_tbl api (ref [ i ]))
        p.pr_apis)
    arr;
  let deps_tbl = Api.Tbl.create (Api.Tbl.length acc_tbl) in
  Api.Tbl.iter (fun api r -> Api.Tbl.replace deps_tbl api !r) acc_tbl;
  {
    packages = arr;
    pkg_index = idx;
    bins;
    api_dependents = deps_tbl;
    total_installs;
    n_packages = Array.length arr;
  }
