(** In-memory relational store over the analysis results — the OCaml
    replacement for the paper's PostgreSQL database (Section 7). Rows
    exist for packages and binaries; the API-dependents index supports
    the recursive aggregation queries behind every experiment.

    The record types are deliberately transparent: the metrics and
    study layers read rows directly. Mutation, however, goes through
    {!build} only — a store is immutable once built, which is what
    lets {!Lapis_query} precompute indexes over it and
    {!Snapshot} serialize it without coherence concerns. *)

open Lapis_apidb
module Footprint = Lapis_analysis.Footprint

type bin_row = {
  br_path : string;
  br_package : string;
  br_class : Lapis_elf.Classify.t;
  br_digest : Digest.t;  (** MD5 of the file bytes, the snapshot-lookup key *)
  br_direct : Footprint.t;  (** intra-binary footprint *)
  br_resolved : Footprint.t;  (** after cross-library closure *)
  br_init : Api.Set.t;  (** APIs requestable during initialization *)
  br_serving : Api.Set.t;
      (** APIs requestable while serving; [br_init] and [br_serving]
          partition [br_resolved.apis] with overlap — their union is
          exactly it, and phase-agnostic binaries carry it in both *)
}

type pkg_row = {
  pr_name : string;
  pr_installs : int;
  pr_prob : float;  (** install probability from popcon counts *)
  pr_deps : string list;
  pr_essential : bool;
  pr_apis : Api.Set.t;  (** package footprint incl. script inheritance *)
  pr_apis_elf : Api.Set.t;  (** footprint from its own ELF executables only *)
  pr_init : Api.Set.t;  (** init-phase slice of [pr_apis] *)
  pr_serving : Api.Set.t;
      (** serving-phase slice of [pr_apis]; the union of the two is
          exactly [pr_apis] (script-inherited APIs count as both) *)
}

type t = {
  packages : pkg_row array;
  pkg_index : (string, int) Hashtbl.t;  (** package name -> array index *)
  bins : bin_row list;
  api_dependents : int list Api.Tbl.t;  (** api -> indexes of packages *)
  total_installs : int;
  n_packages : int;
}

val find : t -> string -> pkg_row option

val package_names : t -> string list

val dependents : t -> Api.t -> int list
(** Indexes of the packages whose footprint contains the API. *)

val dependent_rows : t -> Api.t -> pkg_row list

val used_apis : t -> Api.t list
(** Every API with at least one dependent package (unordered). *)

val iter_packages : t -> (pkg_row -> unit) -> unit

val build :
  packages:pkg_row list -> bins:bin_row list -> total_installs:int -> t
(** Build the store and its API-dependents index. Package order is
    preserved into the row array (and is the order every aggregate
    metric folds in, so results are reproducible bit for bit). *)
