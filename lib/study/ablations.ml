(** Ablations over the methodology's design choices (DESIGN.md):
    popcon weighting, dependency closure, cross-library call-graph
    resolution, and the function-pointer over-approximation. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Importance = Lapis_metrics.Importance
module Completeness = Lapis_metrics.Completeness
module Footprint = Lapis_analysis.Footprint
module Binary = Lapis_analysis.Binary

(* --- popcon weighting ------------------------------------------------ *)

(* Importance with uniform install probabilities: every package counts
   the same. Shows why popularity weighting matters: rarely-installed
   packages inflate the apparent importance of tail APIs. *)
type popcon_result = {
  moved_class : int;
      (** syscalls whose importance crosses the 10% line when the
          popcon weights are removed *)
  spearman_like : float;  (** rank agreement between the two orders *)
}

let uniform_importance store api =
  let k = List.length (Store.dependents store api) in
  (* every package installed with the same probability 0.5 *)
  1.0 -. (0.5 ** float_of_int k)

let run_popcon (env : Env.t) : popcon_result =
  let store = env.Env.store in
  let entries = Array.to_list Syscall_table.all in
  let weighted =
    List.map
      (fun (e : Syscall_table.entry) ->
        Importance.importance store (Api.Syscall e.Syscall_table.nr))
      entries
  in
  let uniform =
    List.map
      (fun (e : Syscall_table.entry) ->
        uniform_importance store (Api.Syscall e.Syscall_table.nr))
      entries
  in
  let moved =
    List.fold_left2
      (fun acc w u -> if (w >= 0.10) <> (u >= 0.10) then acc + 1 else acc)
      0 weighted uniform
  in
  (* crude rank agreement: fraction of pairs ordered the same way,
     sampled on a stride to stay O(n^2 / stride) *)
  let wa = Array.of_list weighted and ua = Array.of_list uniform in
  let n = Array.length wa in
  let agree = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    let j = (i * 7 + 13) mod n in
    if i <> j then begin
      incr total;
      if compare wa.(i) wa.(j) = compare ua.(i) ua.(j) then incr agree
    end
  done;
  {
    moved_class = moved;
    spearman_like = float_of_int !agree /. float_of_int (max 1 !total);
  }

(* --- dependency closure ---------------------------------------------- *)

type deps_result = {
  with_deps : float;
  without_deps : float;  (** same syscall set, dependency rule disabled *)
}

let completeness_no_deps store nrs =
  let set =
    List.fold_left (fun s nr -> Api.Set.add (Api.Syscall nr) s) Api.Set.empty nrs
  in
  let num = ref 0.0 and den = ref 0.0 in
  Store.iter_packages store (fun p ->
      den := !den +. p.Store.pr_prob;
      let ok =
        Api.Set.for_all
          (fun api ->
            match api with Api.Syscall _ -> Api.Set.mem api set | _ -> true)
          p.Store.pr_apis
      in
      if ok then num := !num +. p.Store.pr_prob);
  !num /. max 1e-9 !den

let run_deps (env : Env.t) : deps_result =
  let store = env.Env.store in
  let stage3 =
    List.filteri (fun i _ -> i < 145) env.Env.ranking
  in
  {
    with_deps = Completeness.of_syscall_set store stage3;
    without_deps = completeness_no_deps store stage3;
  }

(* --- cross-library closure ------------------------------------------- *)

type callgraph_result = {
  mean_direct : float;  (** syscalls found per executable, no closure *)
  mean_resolved : float;  (** after cross-library resolution *)
}

let run_callgraph (env : Env.t) : callgraph_result =
  let store = env.Env.store in
  let exes =
    List.filter
      (fun (b : Store.bin_row) ->
        b.Store.br_class = Lapis_elf.Classify.Elf_dynamic)
      store.Store.bins
  in
  let count fp =
    float_of_int (List.length (Footprint.syscalls fp))
  in
  let mean f =
    List.fold_left (fun a b -> a +. f b) 0.0 exes
    /. float_of_int (max 1 (List.length exes))
  in
  {
    mean_direct = mean (fun b -> count b.Store.br_direct);
    mean_resolved = mean (fun b -> count b.Store.br_resolved);
  }

(* --- function-pointer over-approximation ----------------------------- *)

type fnptr_result = {
  binaries_affected : int;
      (** executables whose local footprint shrinks without the lea
          over-approximation *)
  binaries_total : int;
}

let run_fnptr (env : Env.t) : fnptr_result =
  let dist = Env.dist_exn env in
  let affected = ref 0 and total = ref 0 in
  List.iter
    (fun (f : Lapis_distro.Package.file) ->
      if f.Lapis_distro.Package.kind = Lapis_distro.Package.Executable then
        match Lapis_elf.Reader.parse f.Lapis_distro.Package.bytes with
        | Error _ -> ()
        | Ok img ->
          let bin = Binary.analyze img in
          (match Binary.entry_points bin with
           | [] -> ()
           | entry :: _ ->
             incr total;
             let full = Binary.local_closure bin ~start:entry in
             let no_fnptr =
               Binary.local_closure ~follow_fnptrs:false bin ~start:entry
             in
             let card c =
               Api.Set.cardinal c.Binary.cl_footprint.Footprint.apis
               + Footprint.String_set.cardinal c.Binary.cl_imports
             in
             if card no_fnptr < card full then incr affected))
    (Lapis_distro.Package.all_files dist);
  { binaries_affected = !affected; binaries_total = !total }

let render_all env =
  let module R = Lapis_report.Report in
  let p = run_popcon env in
  let d = run_deps env in
  let c = run_callgraph env in
  (* the fn-pointer ablation re-analyzes raw bytes, so it needs the
     generated corpus and degrades gracefully on snapshot-backed envs *)
  let fnptr_line =
    match Env.corpus env with
    | Ok _ ->
      let f = run_fnptr env in
      Printf.sprintf
        "  fn-pointer over-approximation: %d of %d executables lose APIs \
         without it"
        f.binaries_affected f.binaries_total
    | Error _ ->
      "  fn-pointer over-approximation: (needs the generated corpus; \
       unavailable from a snapshot)"
  in
  let body =
    Printf.sprintf
      "  popcon weighting: %d syscalls change importance class without it;\n\
      \    pairwise rank agreement with uniform weights: %s\n\
      \  dependency closure (top-145 syscalls): with deps %s, without %s\n\
      \  call-graph resolution: %.1f syscalls/exe direct, %.1f resolved\n%s"
      p.moved_class (R.pct p.spearman_like)
      (R.pct2 d.with_deps) (R.pct2 d.without_deps)
      c.mean_direct c.mean_resolved fnptr_line
  in
  R.section ~title:"Ablations: methodology design choices" body
