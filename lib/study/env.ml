(** Shared experiment environment: an analyzed world — either run
    through the full measurement pipeline or reloaded from a snapshot
    — with the query index, syscall ranking and completeness curve
    precomputed once. Every Section 3-6 experiment consumes this. *)

module Pipeline = Lapis_store.Pipeline
module Snapshot = Lapis_store.Snapshot
module Store = Lapis_store.Store
module Query = Lapis_query.Query

type t = {
  analyzed : Pipeline.analyzed option;
      (** the pipeline result, including the raw corpus; [None] when
          the environment was reloaded from a snapshot *)
  store : Store.t;
  index : Query.t;  (** built once, shared by every experiment *)
  ranking : int list;  (** syscall numbers, most important first *)
  curve : (int * float) list;  (** Figure 3 series over [ranking] *)
}

(* Both construction paths end here, so the ranking/curve derivation
   is identical whether the store came from the pipeline or a file. *)
let of_store ?analyzed (store : Store.t) =
  let index = Query.index store in
  let ranking, curve =
    Lapis_perf.Stage.time "metrics" (fun () ->
        let ranking = Lapis_metrics.Importance.rank_syscalls_of_index index in
        (ranking, Lapis_metrics.Completeness.curve store ~ranking))
  in
  { analyzed; store; index; ranking; curve }

let create ?(config = Lapis_distro.Generator.default_config)
    ?(pipeline = Pipeline.default) () =
  let dist = Lapis_distro.Generator.generate ~config () in
  let analyzed = Pipeline.run ~config:pipeline dist in
  of_store ~analyzed analyzed.Pipeline.store

(* A small environment for fast unit tests. *)
let create_small () =
  create
    ~config:{ Lapis_distro.Generator.default_config with n_packages = 300 }
    ()

let of_snapshot (snap : Snapshot.t) = of_store snap.Snapshot.store

let corpus t =
  match t.analyzed with
  | Some a -> Ok a
  | None ->
    Error
      "snapshot-backed environment: the generated corpus is not stored in \
       snapshots"

let dist t = Option.map (fun a -> a.Pipeline.dist) t.analyzed

let analyzed_exn t =
  match t.analyzed with
  | Some a -> a
  | None ->
    invalid_arg
      "Env.analyzed_exn: snapshot-backed environment has no corpus (guard \
       with Env.corpus)"

let dist_exn t = (analyzed_exn t).Pipeline.dist
