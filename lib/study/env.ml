(** Shared experiment environment: one synthetic distribution run
    through the full measurement pipeline, with the syscall ranking
    and completeness curve precomputed. Every Section 3-6 experiment
    consumes this. *)

module Pipeline = Lapis_store.Pipeline
module Store = Lapis_store.Store

type t = {
  analyzed : Pipeline.analyzed;
  store : Store.t;
  ranking : int list;  (** syscall numbers, most important first *)
  curve : (int * float) list;  (** Figure 3 series over [ranking] *)
}

let create ?(config = Lapis_distro.Generator.default_config) () =
  let dist = Lapis_distro.Generator.generate ~config () in
  let analyzed = Pipeline.run dist in
  let store = analyzed.Pipeline.store in
  let ranking, curve =
    Lapis_perf.Stage.time "metrics" (fun () ->
        let ranking = Lapis_metrics.Importance.rank_syscalls store in
        (ranking, Lapis_metrics.Completeness.curve store ~ranking))
  in
  { analyzed; store; ranking; curve }

(* A small environment for fast unit tests. *)
let create_small () =
  create
    ~config:{ Lapis_distro.Generator.default_config with n_packages = 300 }
    ()

let dist t = t.analyzed.Pipeline.dist
