(** Shared experiment environment: an analyzed world — either run
    through the full measurement pipeline or reloaded from a snapshot
    — with the query index, syscall ranking and completeness curve
    precomputed once. Every Section 3-6 experiment consumes this. *)

module Pipeline = Lapis_store.Pipeline
module Snapshot = Lapis_store.Snapshot
module Store = Lapis_store.Store
module Query = Lapis_query.Query

type t = {
  analyzed : Pipeline.analyzed option;
      (** the pipeline result, including the raw corpus; [None] when
          the environment was reloaded from a snapshot *)
  store : Store.t;
  index : Query.t;  (** built once, shared by every experiment *)
  ranking : int list;  (** syscall numbers, most important first *)
  curve : (int * float) list;  (** the Figure 3 series over [ranking] *)
}

val create :
  ?config:Lapis_distro.Generator.config ->
  ?pipeline:Pipeline.config ->
  unit ->
  t
(** Generate, analyze and index a distribution (deterministic per
    config). The default config builds 1,400 packages with the default
    pipeline configuration. *)

val create_small : unit -> t
(** A 300-package environment for fast tests. *)

val of_snapshot : Snapshot.t -> t
(** Rebuild an environment from a loaded snapshot: no generation, no
    analysis — only index/ranking/curve derivation. [analyzed] is
    [None]; experiments that need the raw corpus must degrade
    gracefully (see {!corpus}). *)

val corpus : t -> (Pipeline.analyzed, string) result
(** The pipeline result, or a human-readable reason why it is
    unavailable (snapshot-backed environments). *)

val dist : t -> Lapis_distro.Package.distribution option

val analyzed_exn : t -> Pipeline.analyzed
(** @raise Invalid_argument on snapshot-backed environments. Callers
    must guard with {!corpus} first (the experiment registry does). *)

val dist_exn : t -> Lapis_distro.Package.distribution
