(** Registry of every reproduced experiment, keyed by the paper's
    figure/table identifiers. The bench harness and the CLI iterate
    this list. *)

type t = { id : string; title : string; render : Env.t -> string }

(* Experiments that re-read the raw corpus bytes cannot run from a
   snapshot-backed environment; render the reason instead of crashing. *)
let needs_corpus render env =
  match Env.corpus env with
  | Ok _ -> render env
  | Error msg ->
    Lapis_report.Report.section ~title:"(skipped)"
      (Printf.sprintf "  this experiment needs the raw corpus: %s" msg)

let all : t list =
  [ { id = "fig1"; title = "Figure 1: executable types";
      render = needs_corpus (fun env -> Fig1.render (Fig1.run env)) };
    { id = "fig2"; title = "Figure 2: syscall API importance";
      render = (fun env -> Fig2.render (Fig2.run env)) };
    { id = "table1"; title = "Table 1: syscalls used only via libraries";
      render = (fun env -> Table1.render (Table1.run env)) };
    { id = "table2"; title = "Table 2: syscalls dominated by packages";
      render = (fun env -> Table2.render (Table2.run env)) };
    { id = "table3"; title = "Table 3: unused syscalls";
      render = (fun env -> Table3.render (Table3.run env)) };
    { id = "fig3"; title = "Figure 3: weighted completeness curve";
      render = (fun env -> Fig3.render (Fig3.run env)) };
    { id = "table4"; title = "Table 4: five implementation stages";
      render = (fun env -> Table4.render (Table4.run env)) };
    { id = "fig4"; title = "Figure 4: ioctl operations";
      render = (fun env -> Fig4.render (Fig4.run env)) };
    { id = "fig5"; title = "Figure 5: fcntl/prctl operations";
      render = (fun env -> Fig5.render (Fig5.run env)) };
    { id = "fig6"; title = "Figure 6: pseudo-files";
      render = (fun env -> Fig6.render (Fig6.run env)) };
    { id = "fig7"; title = "Figure 7: libc exports";
      render = (fun env -> Fig7.render (Fig7.run env)) };
    { id = "table5"; title = "Table 5: runtime base footprint";
      render = (fun env -> Table5.render (Table5.run env)) };
    { id = "table6"; title = "Table 6: Linux systems completeness";
      render = (fun env -> Table6.render (Table6.run env)) };
    { id = "table7"; title = "Table 7: libc variants completeness";
      render = (fun env -> Table7.render (Table7.run env)) };
    { id = "fig8"; title = "Figure 8: unweighted importance";
      render = (fun env -> Fig8.render (Fig8.run env)) };
    { id = "table8";
      title = "Table 8: secure vs insecure variants";
      render =
        (fun env ->
          Variant_tables.(render Lapis_apidb.Variants.Id_management
                            (run env Lapis_apidb.Variants.Id_management))
          ^ Variant_tables.(render Lapis_apidb.Variants.Directory_races
                              (run env Lapis_apidb.Variants.Directory_races))) };
    { id = "table9"; title = "Table 9: old vs new variants";
      render =
        (fun env ->
          Variant_tables.(render Lapis_apidb.Variants.Old_vs_new
                            (run env Lapis_apidb.Variants.Old_vs_new))) };
    { id = "table10"; title = "Table 10: Linux-specific vs portable";
      render =
        (fun env ->
          Variant_tables.(render Lapis_apidb.Variants.Linux_vs_portable
                            (run env Lapis_apidb.Variants.Linux_vs_portable))) };
    { id = "table11"; title = "Table 11: powerful vs simple";
      render =
        (fun env ->
          Variant_tables.(render Lapis_apidb.Variants.Powerful_vs_simple
                            (run env Lapis_apidb.Variants.Powerful_vs_simple))) };
    { id = "section6"; title = "Section 6: uniqueness & seccomp";
      render = (fun env -> Section6.render (Section6.run env)) };
    { id = "fullpath"; title = "Full-API path (Section 3.2 extension)";
      render = (fun env -> Full_path.render (Full_path.run env)) };
    { id = "tracer"; title = "Dynamic vs static (Section 2.3)";
      render = needs_corpus (fun env -> Tracer.render (Tracer.run env)) };
    { id = "precision"; title = "Precision audit: linear vs dataflow";
      render = needs_corpus (fun env -> Precision.render (Precision.run env)) };
    { id = "phase-audit"; title = "Phase audit: temporal attribution";
      render = needs_corpus (fun env -> Phases.render_audit (Phases.audit env)) };
    { id = "phase-importance"; title = "Importance/completeness by phase";
      render = (fun env -> Phases.render_importance (Phases.importance env)) };
    { id = "ablations"; title = "Ablations";
      render = Ablations.render_all } ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all
