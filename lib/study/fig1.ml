(** Figure 1: breakdown of executables in the repository by type — ELF
    binaries vs. interpreted scripts per interpreter, and the split of
    ELF binaries into shared libraries, dynamically-linked executables
    and static executables. *)

module Classify = Lapis_elf.Classify
module P = Lapis_distro.Package

type row = { label : string; count : int; fraction : float }

type result = {
  by_type : row list;  (** ELF vs. each interpreter, over all files *)
  elf_split : row list;  (** within ELF: libs / dynamic / static *)
}

(* Paper reference values (fractions of all executables / of ELF). *)
let paper_by_type =
  [ ("ELF binary", 0.60); ("Shell (dash)", 0.15); ("Python", 0.09);
    ("Perl", 0.08); ("Shell (bash)", 0.06); ("Ruby", 0.01);
    ("Others", 0.01) ]

let paper_elf_split =
  [ ("shared library", 0.52); ("dynamic executable", 0.48);
    ("static binary", 0.0038) ]

let run (env : Env.t) : result =
  let dist = Env.dist_exn env in
  (* count runtime libraries too: they are files of libc6 *)
  let classes =
    List.map (fun f -> Classify.classify f.P.bytes) (P.all_files dist)
    @ List.map (fun (_, bytes) -> Classify.classify bytes) dist.P.runtime
  in
  let total = List.length classes in
  let count pred = List.length (List.filter pred classes) in
  let frac k = float_of_int k /. float_of_int (max 1 total) in
  let is_elf = function
    | Classify.Elf_static | Classify.Elf_dynamic | Classify.Elf_shared_lib ->
      true
    | Classify.Script _ | Classify.Data -> false
  in
  let script i = function Classify.Script j -> i = j | _ -> false in
  let n_elf = count is_elf in
  let by_type =
    [ { label = "ELF binary"; count = n_elf; fraction = frac n_elf } ]
    @ List.map
        (fun (label, interp) ->
          let k = count (script interp) in
          { label; count = k; fraction = frac k })
        [ ("Shell (dash)", Classify.Dash); ("Python", Classify.Python);
          ("Perl", Classify.Perl); ("Shell (bash)", Classify.Bash);
          ("Ruby", Classify.Ruby) ]
    @ (let k =
         count (function Classify.Script (Classify.Other_interp _) -> true
                       | _ -> false)
       in
       [ { label = "Others"; count = k; fraction = frac k } ])
  in
  let elf_frac k = float_of_int k /. float_of_int (max 1 n_elf) in
  let elf_split =
    List.map
      (fun (label, cls) ->
        let k = count (fun c -> c = cls) in
        { label; count = k; fraction = elf_frac k })
      [ ("shared library", Classify.Elf_shared_lib);
        ("dynamic executable", Classify.Elf_dynamic);
        ("static binary", Classify.Elf_static) ]
  in
  { by_type; elf_split }

let render (r : result) =
  let module R = Lapis_report.Report in
  let rows paper data =
    List.map
      (fun row ->
        let p =
          match List.assoc_opt row.label paper with
          | Some v -> R.pct v
          | None -> "-"
        in
        [ row.label; string_of_int row.count; R.pct row.fraction; p ])
      data
  in
  R.section ~title:"Figure 1: executable types in the repository"
    (R.table
       ~header:[ "type"; "count"; "measured"; "paper" ]
       (rows paper_by_type r.by_type)
     ^ "\n\n  ELF binaries by linkage:\n"
     ^ R.table
         ~header:[ "kind"; "count"; "measured"; "paper" ]
         (rows paper_elf_split r.elf_split))
