(** Figure 2: distribution of API importance over the system call
    table (inverted CDF), with the paper's anchor points — 224
    indispensable calls, 257 above 10%, and the unused tail. *)

module Importance = Lapis_metrics.Importance

type result = {
  series : float list;  (** importance, descending, one per syscall *)
  indispensable : int;  (** calls at >= 99.9% importance *)
  above_10pct : int;
  below_10pct : int;  (** nonzero but below 10% *)
  unused : int;
}

let paper = ("224 indispensable", "257 >= 10%", "44 < 10%", "18 unused")

let run (env : Env.t) : result =
  let values =
    List.map snd (Importance.syscall_importances_of_index env.Env.index)
  in
  let series = Importance.inverted_cdf values in
  let indispensable = Importance.count_at_least 0.995 series in
  let above_10pct = Importance.count_at_least 0.10 series in
  let used = List.length (List.filter (fun v -> v > 0.0) series) in
  {
    series;
    indispensable;
    above_10pct;
    below_10pct = used - above_10pct;
    unused = List.length series - used;
  }

let render (r : result) =
  let module R = Lapis_report.Report in
  let body =
    R.curve r.series
    ^ "\n"
    ^ R.compare_line ~label:"indispensable system calls (100% importance)"
        ~paper:"224" ~measured:(string_of_int r.indispensable)
    ^ "\n"
    ^ R.compare_line ~label:"system calls with importance >= 10%"
        ~paper:"257" ~measured:(string_of_int r.above_10pct)
    ^ "\n"
    ^ R.compare_line ~label:"used, below 10% importance" ~paper:"44"
        ~measured:(string_of_int r.below_10pct)
    ^ "\n"
    ^ R.compare_line ~label:"never used" ~paper:"18"
        ~measured:(string_of_int r.unused)
  in
  R.section ~title:"Figure 2: API importance of system calls" body
