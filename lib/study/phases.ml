(** Temporal phase study: the phase-attribution audit and
    importance/completeness by phase.

    The audit is the phased twin of {!Precision}: the generator plants
    two-phase server executables with a known init/serving split of
    their APIs, so the static attribution of
    {!Lapis_analysis.Phase} is measured against exact ground truth.
    Attribution is conservative by design — anything it cannot place
    is widened into both phases — so the contract is asymmetric:

    - {b false negatives must be zero} in each phase: an API the
      ground truth puts in phase P must appear in the recovered
      phase-P set (a miss would make a phase-restricted seccomp
      policy kill the program);
    - {b over-widening is permitted} and reported as a rate: APIs the
      truth confines to one phase but the analysis reports in both.

    The invariant [init ∪ serving = total] is also re-checked here
    over every package row, because it is what keeps every unphased
    result bit-identical to the pre-phase engine.

    The importance half needs no corpus: it reads the phased survival
    products and closure classes off the query index, and shows what
    temporal attribution buys — how the top of the ranking shifts per
    phase, and how much more complete the same syscall set is for a
    process that has already finished initializing. *)

module Store = Lapis_store.Store
module Query = Lapis_query.Query
module Api = Lapis_apidb.Api

(* ------------------------------------------------------------------ *)
(* Phase-attribution audit (needs the generated corpus)                *)
(* ------------------------------------------------------------------ *)

type phase_audit = {
  pa_label : string;
  pa_truth : int;  (** ground-truth (package, api) pairs in this phase *)
  pa_fn : int;  (** of those, missing from the recovered phase set *)
  pa_widened : int;
      (** recovered pairs the truth confines to the other phase *)
}

type audit = {
  a_packages : int;  (** packages with phased ground truth *)
  a_phased : int;  (** of those, with a real split (init <> serving) *)
  a_init : phase_audit;
  a_serving : phase_audit;
  a_union_violations : int;
      (** package rows where init ∪ serving <> total (must be 0) *)
}

let audit (env : Env.t) : audit =
  let analyzed = Env.analyzed_exn env in
  let dist = Env.dist_exn env in
  let store = analyzed.Lapis_store.Pipeline.store in
  let packages = ref 0 and phased = ref 0 and violations = ref 0 in
  let truth_i = ref 0 and fn_i = ref 0 and wide_i = ref 0 in
  let truth_s = ref 0 and fn_s = ref 0 and wide_s = ref 0 in
  Array.iter
    (fun (p : Store.pkg_row) ->
      if
        not
          (Api.Set.equal
             (Api.Set.union p.Store.pr_init p.Store.pr_serving)
             p.Store.pr_apis)
      then incr violations;
      match
        Hashtbl.find_opt dist.Lapis_distro.Package.phase_truth p.Store.pr_name
      with
      | None -> ()
      | Some (t_init, t_serving) ->
        incr packages;
        if not (Api.Set.equal t_init t_serving) then incr phased;
        (* Script-inherited APIs live only in the package-level sets;
           the phase ground truth covers what the package's own ELFs
           were built to request, so the comparison is restricted to
           the ELF-derived footprint — exactly like {!Precision}. *)
        let got_init = Api.Set.inter p.Store.pr_init p.Store.pr_apis_elf in
        let got_serving =
          Api.Set.inter p.Store.pr_serving p.Store.pr_apis_elf
        in
        let tally truth got other_truth truth_n fn wide =
          truth_n := !truth_n + Api.Set.cardinal truth;
          fn := !fn + Api.Set.cardinal (Api.Set.diff truth got);
          (* over-widening: recovered in this phase, planted only in
             the other one *)
          wide :=
            !wide
            + Api.Set.cardinal
                (Api.Set.inter (Api.Set.diff got truth) other_truth)
        in
        tally t_init got_init t_serving truth_i fn_i wide_i;
        tally t_serving got_serving t_init truth_s fn_s wide_s)
    store.Store.packages;
  {
    a_packages = !packages;
    a_phased = !phased;
    a_init =
      { pa_label = "init"; pa_truth = !truth_i; pa_fn = !fn_i;
        pa_widened = !wide_i };
    a_serving =
      { pa_label = "serving"; pa_truth = !truth_s; pa_fn = !fn_s;
        pa_widened = !wide_s };
    a_union_violations = !violations;
  }

let audit_passed (a : audit) =
  a.a_init.pa_fn = 0 && a.a_serving.pa_fn = 0 && a.a_union_violations = 0

let render_audit (a : audit) =
  let module R = Lapis_report.Report in
  let row (pa : phase_audit) =
    let rate =
      if pa.pa_truth = 0 then "-"
      else R.pct2 (float_of_int pa.pa_widened /. float_of_int pa.pa_truth)
    in
    [ pa.pa_label;
      string_of_int pa.pa_truth;
      Printf.sprintf "%d %s" pa.pa_fn (if pa.pa_fn = 0 then "(PASS)" else "(FAIL)");
      string_of_int pa.pa_widened;
      rate ]
  in
  let table =
    R.table
      ~header:[ "phase"; "truth"; "FN"; "widened"; "rate" ]
      [ row a.a_init; row a.a_serving ]
  in
  let body =
    Printf.sprintf
      "%s\n\n\
      \  %d packages audited against phased ground truth, %d with a\n\
      \  real init/serving split planted; init ∪ serving = total holds\n\
      \  on %s package rows%s.\n\
      \n\
      \  FN counts ground-truth phase items the attribution missed —\n\
      \  the conservative walk must never drop one (a phase-restricted\n\
      \  seccomp policy would kill the program), so any FN fails the\n\
      \  audit. Widened counts items confined to one phase by the\n\
      \  truth but reported in both: the price of soundness at\n\
      \  unresolved attribution points, reported as a rate over the\n\
      \  phase's truth size.\n\
      \n\
      \  overall: %s"
      table a.a_packages a.a_phased
      (if a.a_union_violations = 0 then "all"
       else string_of_int a.a_union_violations ^ " violations among")
      (if a.a_union_violations = 0 then "" else " (FAIL)")
      (if audit_passed a then "PASS" else "FAIL")
  in
  R.section ~title:"Phase audit: attribution vs planted ground truth" body

(* ------------------------------------------------------------------ *)
(* Importance and completeness by phase (index-backed)                 *)
(* ------------------------------------------------------------------ *)

type importance_row = {
  ir_name : string;
  ir_all : float;
  ir_init : float;
  ir_serving : float;
}

type importance = {
  i_rows : importance_row list;  (** top of the ranking, per phase *)
  i_curve : (int * float * float * float) list;
      (** (top-N, all, init, serving) weighted completeness *)
}

let importance ?(rows = 10) ?(sizes = [ 50; 100; 125; 150; 200 ])
    (env : Env.t) : importance =
  let idx = env.Env.index in
  let row nr =
    let api = Api.Syscall nr in
    {
      ir_name = Lapis_apidb.Syscall_table.name_of_nr nr;
      ir_all = Query.importance idx api;
      ir_init = Query.importance ~phase:Query.Init idx api;
      ir_serving = Query.importance ~phase:Query.Serving idx api;
    }
  in
  let take n l = List.filteri (fun i _ -> i < n) l in
  let point n =
    let s = take n env.Env.ranking in
    ( n,
      Query.eval_syscalls idx s,
      Query.eval_syscalls ~phase:Query.Init idx s,
      Query.eval_syscalls ~phase:Query.Serving idx s )
  in
  {
    i_rows = List.map row (take rows env.Env.ranking);
    i_curve = List.map point sizes;
  }

let render_importance (i : importance) =
  let module R = Lapis_report.Report in
  let table =
    R.table
      ~header:[ "system call"; "all"; "init"; "serving" ]
      (List.map
         (fun r ->
           [ r.ir_name; R.pct2 r.ir_all; R.pct2 r.ir_init;
             R.pct2 r.ir_serving ])
         i.i_rows)
  in
  let curve =
    R.table
      ~header:[ "top-N"; "all"; "init"; "serving" ]
      (List.map
         (fun (n, a, ini, srv) ->
           [ string_of_int n; R.pct2 a; R.pct2 ini; R.pct2 srv ])
         i.i_curve)
  in
  let body =
    Printf.sprintf
      "%s\n\n\
      \  Importance per phase: 1 - prod(1 - p) over the packages whose\n\
      \  phase requirement set contains the call. A call whose serving\n\
      \  column is far below its all column is start-up machinery — a\n\
      \  kernel serving already-initialized processes can drop it.\n\
      \n\
      \  weighted completeness of the top-N ranking prefix, per phase:\n\
      \n\
      %s\n\n\
      \  The phased values can only be >= the unphased one (phase\n\
      \  requirement sets are subsets of the total footprint): a\n\
      \  process past initialization is satisfied by fewer calls, so\n\
      \  a serving-phase seccomp policy crosses each completeness\n\
      \  threshold earlier in the ranking."
      table curve
  in
  R.section ~title:"Importance and completeness by phase" body
