(** Precision audit of the analysis phases (Section 2.3/2.4 extension).

    The synthetic corpus ships generator ground truth, so the paper's
    manual strace spot check becomes a measurable three-way
    comparison, run over the same distribution bytes:

    - the linear constant scan (control-flow blind baseline),
    - the CFG dataflow engine with wrapper summaries (the default),
    - the dynamic tracer (one concrete path; misses are expected, a
      static miss is not).

    For each static phase we report false negatives (planted APIs the
    phase missed), false positives (APIs reported but never planted —
    dead decoy code read by the linear pass), and the unresolved
    syscall-site rate the paper pins at ~4% (Section 2.4). The
    dataflow engine must reach zero false negatives and a strictly
    lower unresolved rate than the baseline. *)

module Pipeline = Lapis_store.Pipeline
module Store = Lapis_store.Store
module Binary = Lapis_analysis.Binary
module Audit = Lapis_analysis.Audit
module Footprint = Lapis_analysis.Footprint

type mode_result = {
  m_label : string;
  m_stats : Audit.stats;
  m_wrong_packages : int;  (** packages whose recovered set <> truth *)
}

type result = {
  r_linear : mode_result;
  r_dataflow : mode_result;
  r_packages : int;
  r_traced : int;
  r_tracer_misses : int;  (** dynamic APIs missed statically: must be 0 *)
}

let mode_result label (a : Pipeline.analyzed) : mode_result =
  let dist = a.Pipeline.dist in
  let stats = ref Audit.zero and wrong = ref 0 in
  Array.iter
    (fun (p : Store.pkg_row) ->
      match Hashtbl.find_opt dist.Lapis_distro.Package.truth p.Store.pr_name with
      | None -> ()
      | Some truth ->
        let fn, fp = Audit.compare_sets ~truth ~got:p.Store.pr_apis_elf in
        if fn + fp > 0 then incr wrong;
        stats :=
          Audit.add !stats
            { Audit.false_negatives = fn; false_positives = fp;
              unresolved = 0; sites = 0 })
    a.Pipeline.store.Store.packages;
  (* unresolved-site accounting comes from the per-binary direct
     footprints: every syscall instruction and syscall()-helper call
     site the engine walked *)
  List.iter
    (fun (b : Store.bin_row) ->
      let fp = b.Store.br_direct in
      stats :=
        Audit.add !stats
          { Audit.false_negatives = 0; false_positives = 0;
            unresolved = fp.Footprint.unresolved_sites;
            sites = fp.Footprint.syscall_sites })
    a.Pipeline.store.Store.bins;
  { m_label = label; m_stats = !stats; m_wrong_packages = !wrong }

let run (env : Env.t) : result =
  let analyzed = Env.analyzed_exn env in
  let dataflow = mode_result "cfg dataflow" analyzed in
  (* re-run the very same distribution bytes through the pipeline with
     the baseline engine *)
  let linear_analyzed =
    Pipeline.run
      ~config:{ Pipeline.default with mode = Binary.Linear }
      (Env.dist_exn env)
  in
  let linear = mode_result "linear scan" linear_analyzed in
  let tr = Tracer.run ~sample:25 env in
  {
    r_linear = linear;
    r_dataflow = dataflow;
    r_packages = Array.length analyzed.Pipeline.store.Store.packages;
    r_traced = tr.Tracer.traced;
    r_tracer_misses = tr.Tracer.static_misses;
  }

let render (r : result) =
  let module R = Lapis_report.Report in
  let row (m : mode_result) =
    let s = m.m_stats in
    [ m.m_label;
      string_of_int s.Audit.false_negatives;
      string_of_int s.Audit.false_positives;
      Printf.sprintf "%d/%d" s.Audit.unresolved s.Audit.sites;
      R.pct2 (Audit.unresolved_rate s);
      Printf.sprintf "%d/%d" m.m_wrong_packages r.r_packages ]
  in
  let table =
    R.table
      ~header:[ "phase"; "FN"; "FP"; "unresolved"; "rate"; "pkgs wrong" ]
      [ row r.r_linear; row r.r_dataflow ]
  in
  let body =
    Printf.sprintf
      "%s\n\n\
      \  dynamic tracer: %d executables run, %d statically-missed APIs \
       (must be 0)\n\
      \n\
      \  FN = planted APIs the phase missed, FP = reported APIs never\n\
      \  planted; both against generator ground truth per package.\n\
      \  The linear scan is control-flow blind: it misses the off-path\n\
      \  arm of branchy dispatch, reads dead decoy code, and cannot see\n\
      \  through in-binary syscall wrappers. The CFG engine joins both\n\
      \  arms, skips unreachable blocks and resolves wrapper summaries\n\
      \  at their call sites, driving false negatives to zero and the\n\
      \  unresolved-site rate below the baseline (the residue is real:\n\
      \  run-time-computed numbers, Section 2.4)."
      table r.r_traced r.r_tracer_misses
  in
  R.section ~title:"Precision audit: linear scan vs CFG dataflow" body
