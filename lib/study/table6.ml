(** Table 6: weighted completeness of Linux-compatible systems and
    emulation layers (User-Mode-Linux, L4Linux, the FreeBSD emulation
    layer, Graphene before and after adding the scheduling calls). *)

module Systems = Lapis_apidb.Systems
module Completeness = Lapis_metrics.Completeness

type row = {
  system : string;
  supported : int;
  completeness : float;
  paper : float;
  suggested : string list;  (** most important missing calls *)
}

let run (env : Env.t) : row list =
  let idx = env.Env.index in
  List.map
    (fun (p : Systems.profile) ->
      let set = Systems.supported_set ~ranking:env.Env.ranking p in
      let completeness = Completeness.of_syscall_set_index idx set in
      {
        system = p.Systems.name;
        supported = List.length set;
        completeness;
        paper = p.Systems.paper_completeness;
        suggested = p.Systems.missing;
      })
    Systems.profiles

let render rows =
  let module R = Lapis_report.Report in
  let body =
    R.table
      ~header:[ "system"; "#syscalls"; "measured"; "paper"; "suggested APIs to add" ]
      (List.map
         (fun r ->
           [ r.system; string_of_int r.supported; R.pct2 r.completeness;
             R.pct2 r.paper;
             String.concat ", " (List.filteri (fun i _ -> i < 4) r.suggested) ])
         rows)
  in
  R.section ~title:"Table 6: weighted completeness of Linux systems" body
