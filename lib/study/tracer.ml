(** Dynamic-vs-static validation (Section 2.3, inverted): execute a
    sample of the distribution's executables with the {!Lapis_analysis.Trace}
    interpreter — the strace analogue — and verify that static analysis
    predicted a superset of everything observed at run time. *)

open Lapis_apidb
module Store = Lapis_store.Store
module Trace = Lapis_analysis.Trace
module Footprint = Lapis_analysis.Footprint

type result = {
  traced : int;
  finished : int;  (** programs that ran to completion *)
  static_misses : int;  (** dynamically-observed APIs static analysis missed *)
  mean_dynamic_syscalls : float;
  mean_static_syscalls : float;
  total_steps : int;
}

let run ?(sample = 60) (env : Env.t) : result =
  let world = (Env.analyzed_exn env).Lapis_store.Pipeline.world in
  let dist = Env.dist_exn env in
  let exes =
    Lapis_distro.Package.all_files dist
    |> List.filter (fun f -> f.Lapis_distro.Package.kind = Lapis_distro.Package.Executable)
    |> List.filteri (fun i _ -> i mod (max 1 (Lapis_distro.Package.n_packages dist / sample)) = 0)
  in
  let traced = ref 0 and finished = ref 0 and misses = ref 0 in
  let dyn_sum = ref 0 and stat_sum = ref 0 and steps = ref 0 in
  List.iter
    (fun (f : Lapis_distro.Package.file) ->
      match Lapis_elf.Reader.parse f.Lapis_distro.Package.bytes with
      | Error _ -> ()
      | Ok img ->
        let bin = Lapis_analysis.Binary.analyze img in
        let r = Trace.run world bin in
        incr traced;
        steps := !steps + r.Trace.steps;
        if r.Trace.outcome = Trace.Finished then incr finished;
        let static = Lapis_analysis.Resolve.binary_footprint world bin in
        (* syscall/path containment; incidental opcode-register values
           are excluded, see Trace.static_misses *)
        let missed =
          Api.Set.diff r.Trace.footprint.Footprint.apis static.Footprint.apis
          |> Api.Set.filter (fun api ->
                 match api with
                 | Api.Vop _ -> false
                 | Api.Syscall _ | Api.Pseudo_file _ | Api.Libc_sym _ -> true)
        in
        misses := !misses + Api.Set.cardinal missed;
        dyn_sum := !dyn_sum + List.length (Footprint.syscalls r.Trace.footprint);
        stat_sum := !stat_sum + List.length (Footprint.syscalls static))
    exes;
  let mean x = float_of_int x /. float_of_int (max 1 !traced) in
  {
    traced = !traced;
    finished = !finished;
    static_misses = !misses;
    mean_dynamic_syscalls = mean !dyn_sum;
    mean_static_syscalls = mean !stat_sum;
    total_steps = !steps;
  }

let render (r : result) =
  let module R = Lapis_report.Report in
  let body =
    Printf.sprintf
      "  executables traced:            %d (%d ran to completion, %d \
       instructions)\n\
      \  dynamically observed syscalls: %.1f per executable\n\
      \  statically predicted syscalls: %.1f per executable\n\
      \  APIs observed dynamically but missed statically: %d (must be 0)\n\
      \n\
      \  Static analysis over-approximates the dynamic trace, as the\n\
      \  paper's strace spot check requires; the gap between the two\n\
      \  is the input-dependent behaviour dynamic tracing misses\n\
      \  (Section 2.3: \"dynamic system call logging ... can miss\n\
      \  input-dependent behavior\")."
      r.traced r.finished r.total_steps r.mean_dynamic_syscalls
      r.mean_static_syscalls r.static_misses
  in
  R.section ~title:"Dynamic tracing vs. static analysis (Section 2.3)" body
