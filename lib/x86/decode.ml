(** Linear decoder for the {!Insn} subset. Bytes outside the subset
    decode as [Unknown] and are consumed one at a time, the standard
    disassembler-resynchronization behaviour the paper's analysis
    relies on when sweeping data islands inside .text. *)

type cursor = { buf : string; mutable pos : int }

let u8 c =
  let v = Char.code c.buf.[c.pos] in
  c.pos <- c.pos + 1;
  v

let i32 c =
  let b0 = u8 c and b1 = u8 c and b2 = u8 c and b3 = u8 c in
  Int32.logor
    (Int32.of_int (b0 lor (b1 lsl 8) lor (b2 lsl 16)))
    (Int32.shift_left (Int32.of_int b3) 24)

let i64 c =
  let lo = i32 c and hi = i32 c in
  Int64.logor
    (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int32 hi) 32)

let remaining c = String.length c.buf - c.pos

exception Truncated

let need c n = if remaining c < n then raise Truncated

(* Decode one instruction at [pos]; returns the instruction and its
   length in bytes. *)
let decode_at buf pos : Insn.t * int =
  let c = { buf; pos } in
  let start = pos in
  let finish insn = (insn, c.pos - start) in
  let fallback () = ({ buf; pos = start } |> u8 |> fun b -> Insn.Unknown b), 1 in
  try
    let b0 = u8 c in
    (* Optional REX prefix *)
    let rex, opcode =
      if b0 >= 0x40 && b0 <= 0x4F then begin
        need c 1;
        (b0, u8 c)
      end
      else (0, b0)
    in
    let rex_w = rex land 0x08 <> 0 in
    let rex_r = rex land 0x04 <> 0 in
    let rex_b = rex land 0x01 <> 0 in
    let ext_reg r = if rex_r then r + 8 else r in
    let ext_rm r = if rex_b then r + 8 else r in
    match opcode with
    | 0x0F ->
      need c 1;
      (match u8 c with
       | 0x05 -> finish Insn.Syscall
       | 0x34 -> finish Insn.Sysenter
       | b when b >= 0x80 && b <= 0x8F ->
         need c 4;
         finish (Insn.Jcc_rel (b - 0x80, i32 c))
       | _ -> fallback ())
    | 0xCD ->
      need c 1;
      (match u8 c with 0x80 -> finish Insn.Int80 | _ -> fallback ())
    | b when b >= 0xB8 && b <= 0xBF ->
      let r = Insn.reg_of_code (ext_rm (b - 0xB8)) in
      if rex_w then begin
        need c 8;
        finish (Insn.Mov_ri (r, i64 c))
      end
      else begin
        need c 4;
        let v = Int64.logand (Int64.of_int32 (i32 c)) 0xFFFFFFFFL in
        finish (Insn.Mov_ri (r, v))
      end
    | 0x89 ->
      need c 1;
      let m = u8 c in
      if m lsr 6 = 3 && rex_w then
        let src = Insn.reg_of_code (ext_reg ((m lsr 3) land 7)) in
        let dst = Insn.reg_of_code (ext_rm (m land 7)) in
        finish (Insn.Mov_rr (dst, src))
      else fallback ()
    | 0x31 ->
      need c 1;
      let m = u8 c in
      if m lsr 6 = 3 && rex_w then
        let src = Insn.reg_of_code (ext_reg ((m lsr 3) land 7)) in
        let dst = Insn.reg_of_code (ext_rm (m land 7)) in
        finish (Insn.Xor_rr (dst, src))
      else fallback ()
    | 0x8D ->
      need c 1;
      let m = u8 c in
      if m lsr 6 = 0 && m land 7 = 5 && rex_w then begin
        need c 4;
        let r = Insn.reg_of_code (ext_reg ((m lsr 3) land 7)) in
        finish (Insn.Lea_rip (r, i32 c))
      end
      else fallback ()
    | 0x81 ->
      need c 1;
      let m = u8 c in
      if m lsr 6 = 3 && rex_w then begin
        need c 4;
        let r = Insn.reg_of_code (ext_rm (m land 7)) in
        match (m lsr 3) land 7 with
        | 0 -> finish (Insn.Add_ri (r, i32 c))
        | 5 -> finish (Insn.Sub_ri (r, i32 c))
        | 7 -> finish (Insn.Cmp_ri (r, i32 c))
        | _ -> fallback ()
      end
      else fallback ()
    | 0xE8 ->
      need c 4;
      finish (Insn.Call_rel (i32 c))
    | 0xE9 ->
      need c 4;
      finish (Insn.Jmp_rel (i32 c))
    | 0xFF ->
      need c 1;
      let m = u8 c in
      let md = m lsr 6 and op = (m lsr 3) land 7 and rm = m land 7 in
      (match (md, op, rm) with
       | 3, 2, r -> finish (Insn.Call_reg (Insn.reg_of_code (ext_rm r)))
       | 0, 2, 5 ->
         need c 4;
         finish (Insn.Call_mem_rip (i32 c))
       | 0, 4, 5 ->
         need c 4;
         finish (Insn.Jmp_mem_rip (i32 c))
       | _ -> fallback ())
    | b when b >= 0x50 && b <= 0x57 ->
      finish (Insn.Push_r (Insn.reg_of_code (ext_rm (b - 0x50))))
    | b when b >= 0x58 && b <= 0x5F ->
      finish (Insn.Pop_r (Insn.reg_of_code (ext_rm (b - 0x58))))
    | 0xC3 -> finish Insn.Ret
    | 0x90 when rex = 0 -> finish Insn.Nop
    | _ -> fallback ()
  with Truncated | Invalid_argument _ -> fallback ()

(* Decode a whole byte region into an instruction listing:
   (offset, instruction, length) triples. *)
let decode_all buf : (int * Insn.t * int) list =
  let rec go pos acc =
    if pos >= String.length buf then List.rev acc
    else
      let insn, len = decode_at buf pos in
      go (pos + len) ((pos, insn, len) :: acc)
  in
  go 0 []
