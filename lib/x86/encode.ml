(** Binary encoder for the {!Insn} subset, following the Intel SDM
    encodings. The decoder in {!Decode} is its exact inverse; the
    round-trip property is checked by the test suite. *)

let buf_add_i32 b (v : int32) =
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand v 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 8) 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 16) 0xFFl)));
  Buffer.add_char b
    (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical v 24) 0xFFl)))

let buf_add_i64 b (v : int64) =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
  done

(* REX prefix: 0x40 | W<<3 | R<<2 | X<<1 | B *)
let rex ~w ~r ~b =
  0x40 lor ((if w then 1 else 0) lsl 3) lor ((if r then 1 else 0) lsl 2)
  lor (if b then 1 else 0)

let modrm md reg rm = (md lsl 6) lor ((reg land 7) lsl 3) lor (rm land 7)

let encode_into b insn =
  let open Insn in
  match insn with
  | Mov_ri (r, v) ->
    let code = reg_code r in
    if Int64.compare v 0L >= 0 && Int64.compare v 0xFFFFFFFFL <= 0 then begin
      (* mov r32, imm32 (zero-extends) : B8+rd id *)
      if code >= 8 then Buffer.add_char b (Char.chr (rex ~w:false ~r:false ~b:true));
      Buffer.add_char b (Char.chr (0xB8 + (code land 7)));
      buf_add_i32 b (Int64.to_int32 v)
    end
    else begin
      (* movabs r64, imm64 : REX.W B8+rd io *)
      Buffer.add_char b (Char.chr (rex ~w:true ~r:false ~b:(code >= 8)));
      Buffer.add_char b (Char.chr (0xB8 + (code land 7)));
      buf_add_i64 b v
    end
  | Mov_rr (dst, src) ->
    let d = reg_code dst and s = reg_code src in
    Buffer.add_char b (Char.chr (rex ~w:true ~r:(s >= 8) ~b:(d >= 8)));
    Buffer.add_char b '\x89';
    Buffer.add_char b (Char.chr (modrm 3 s d))
  | Xor_rr (dst, src) ->
    let d = reg_code dst and s = reg_code src in
    Buffer.add_char b (Char.chr (rex ~w:true ~r:(s >= 8) ~b:(d >= 8)));
    Buffer.add_char b '\x31';
    Buffer.add_char b (Char.chr (modrm 3 s d))
  | Lea_rip (r, disp) ->
    let code = reg_code r in
    Buffer.add_char b (Char.chr (rex ~w:true ~r:(code >= 8) ~b:false));
    Buffer.add_char b '\x8D';
    Buffer.add_char b (Char.chr (modrm 0 code 5));
    buf_add_i32 b disp
  | Add_ri (r, v) ->
    let code = reg_code r in
    Buffer.add_char b (Char.chr (rex ~w:true ~r:false ~b:(code >= 8)));
    Buffer.add_char b '\x81';
    Buffer.add_char b (Char.chr (modrm 3 0 code));
    buf_add_i32 b v
  | Sub_ri (r, v) ->
    let code = reg_code r in
    Buffer.add_char b (Char.chr (rex ~w:true ~r:false ~b:(code >= 8)));
    Buffer.add_char b '\x81';
    Buffer.add_char b (Char.chr (modrm 3 5 code));
    buf_add_i32 b v
  | Cmp_ri (r, v) ->
    let code = reg_code r in
    Buffer.add_char b (Char.chr (rex ~w:true ~r:false ~b:(code >= 8)));
    Buffer.add_char b '\x81';
    Buffer.add_char b (Char.chr (modrm 3 7 code));
    buf_add_i32 b v
  | Call_rel disp ->
    Buffer.add_char b '\xE8';
    buf_add_i32 b disp
  | Call_reg r ->
    let code = reg_code r in
    if code >= 8 then Buffer.add_char b (Char.chr (rex ~w:false ~r:false ~b:true));
    Buffer.add_char b '\xFF';
    Buffer.add_char b (Char.chr (modrm 3 2 code))
  | Call_mem_rip disp ->
    Buffer.add_char b '\xFF';
    Buffer.add_char b (Char.chr (modrm 0 2 5));
    buf_add_i32 b disp
  | Jmp_rel disp ->
    Buffer.add_char b '\xE9';
    buf_add_i32 b disp
  | Jcc_rel (cc, disp) ->
    (* jcc rel32 : 0F 80+cc cd *)
    Buffer.add_char b '\x0F';
    Buffer.add_char b (Char.chr (0x80 + (cc land 0xF)));
    buf_add_i32 b disp
  | Jmp_mem_rip disp ->
    Buffer.add_char b '\xFF';
    Buffer.add_char b (Char.chr (modrm 0 4 5));
    buf_add_i32 b disp
  | Syscall -> Buffer.add_string b "\x0F\x05"
  | Int80 -> Buffer.add_string b "\xCD\x80"
  | Sysenter -> Buffer.add_string b "\x0F\x34"
  | Push_r r ->
    let code = reg_code r in
    if code >= 8 then Buffer.add_char b (Char.chr (rex ~w:false ~r:false ~b:true));
    Buffer.add_char b (Char.chr (0x50 + (code land 7)))
  | Pop_r r ->
    let code = reg_code r in
    if code >= 8 then Buffer.add_char b (Char.chr (rex ~w:false ~r:false ~b:true));
    Buffer.add_char b (Char.chr (0x58 + (code land 7)))
  | Ret -> Buffer.add_char b '\xC3'
  | Nop -> Buffer.add_char b '\x90'
  | Unknown byte -> Buffer.add_char b (Char.chr (byte land 0xFF))

let encode insn =
  let b = Buffer.create 16 in
  encode_into b insn;
  Buffer.contents b

let encode_all insns =
  let b = Buffer.create 256 in
  List.iter (encode_into b) insns;
  Buffer.contents b

(* Computed arithmetically rather than by encoding into a scratch
   buffer: the assembler's sizing pass calls this once per instruction
   per function, and the allocation-free form keeps that pass cheap.
   Must mirror [encode_into] case by case; the test suite checks
   [length insn = String.length (encode insn)] over the generators. *)
let length insn =
  let open Insn in
  let rex_b code = if code >= 8 then 1 else 0 in
  match insn with
  | Mov_ri (r, v) ->
    if Int64.compare v 0L >= 0 && Int64.compare v 0xFFFFFFFFL <= 0 then
      rex_b (reg_code r) + 5
    else 10
  | Mov_rr _ | Xor_rr _ -> 3
  | Lea_rip _ | Add_ri _ | Sub_ri _ | Cmp_ri _ -> 7
  | Call_rel _ | Jmp_rel _ -> 5
  | Call_reg r -> rex_b (reg_code r) + 2
  | Call_mem_rip _ | Jcc_rel _ | Jmp_mem_rip _ -> 6
  | Syscall | Int80 | Sysenter -> 2
  | Push_r r | Pop_r r -> rex_b (reg_code r) + 1
  | Ret | Nop | Unknown _ -> 1
