(** The x86-64 instruction subset used by the synthetic binaries and
    understood by the static analyzer. It covers exactly the
    instruction classes the paper's analysis relies on (Section 7):
    system call instructions, immediate loads of system call numbers
    and operation codes, direct and indirect calls, rip-relative
    address formation (the function-pointer over-approximation), and
    enough glue (push/pop/arith/ret) to form realistic function
    bodies. *)

type reg =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let reg_code = function
  | RAX -> 0 | RCX -> 1 | RDX -> 2 | RBX -> 3
  | RSP -> 4 | RBP -> 5 | RSI -> 6 | RDI -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let reg_of_code = function
  | 0 -> RAX | 1 -> RCX | 2 -> RDX | 3 -> RBX
  | 4 -> RSP | 5 -> RBP | 6 -> RSI | 7 -> RDI
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Insn.reg_of_code: %d" n)

let reg_name = function
  | RAX -> "rax" | RCX -> "rcx" | RDX -> "rdx" | RBX -> "rbx"
  | RSP -> "rsp" | RBP -> "rbp" | RSI -> "rsi" | RDI -> "rdi"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

type t =
  | Mov_ri of reg * int64  (** mov r, imm *)
  | Mov_rr of reg * reg  (** mov dst, src (64-bit) *)
  | Xor_rr of reg * reg  (** xor dst, src — dst=src zeroes dst *)
  | Lea_rip of reg * int32  (** lea r, [rip+disp32] *)
  | Add_ri of reg * int32
  | Sub_ri of reg * int32
  | Cmp_ri of reg * int32  (** cmp r, imm — sets flags only *)
  | Call_rel of int32  (** call rel32 *)
  | Call_reg of reg  (** call r *)
  | Call_mem_rip of int32  (** call [rip+disp32] *)
  | Jmp_rel of int32  (** jmp rel32 *)
  | Jcc_rel of int * int32
      (** jcc rel32 (0F 80+cc): condition code 0..15, Intel order *)
  | Jmp_mem_rip of int32  (** jmp [rip+disp32] — PLT stub form *)
  | Syscall
  | Int80  (** int $0x80 *)
  | Sysenter
  | Push_r of reg
  | Pop_r of reg
  | Ret
  | Nop
  | Unknown of int  (** unrecognized byte, consumed one at a time *)

(* Intel condition-code mnemonic suffixes, indexed by the 4-bit cc
   field of the 0F 8x opcodes. *)
let cc_name = function
  | 0 -> "o" | 1 -> "no" | 2 -> "b" | 3 -> "ae"
  | 4 -> "e" | 5 -> "ne" | 6 -> "be" | 7 -> "a"
  | 8 -> "s" | 9 -> "ns" | 10 -> "p" | 11 -> "np"
  | 12 -> "l" | 13 -> "ge" | 14 -> "le" | 15 -> "g"
  | n -> invalid_arg (Printf.sprintf "Insn.cc_name: %d" n)

(* The two condition codes the assembler emits; exported so builders
   do not hard-code magic numbers. *)
let cc_e = 4
let cc_ne = 5

let pp ppf = function
  | Mov_ri (r, v) -> Fmt.pf ppf "mov %s, %Ld" (reg_name r) v
  | Mov_rr (d, s) -> Fmt.pf ppf "mov %s, %s" (reg_name d) (reg_name s)
  | Xor_rr (d, s) -> Fmt.pf ppf "xor %s, %s" (reg_name d) (reg_name s)
  | Lea_rip (r, d) -> Fmt.pf ppf "lea %s, [rip%+ld]" (reg_name r) d
  | Add_ri (r, v) -> Fmt.pf ppf "add %s, %ld" (reg_name r) v
  | Sub_ri (r, v) -> Fmt.pf ppf "sub %s, %ld" (reg_name r) v
  | Cmp_ri (r, v) -> Fmt.pf ppf "cmp %s, %ld" (reg_name r) v
  | Call_rel d -> Fmt.pf ppf "call %+ld" d
  | Call_reg r -> Fmt.pf ppf "call %s" (reg_name r)
  | Call_mem_rip d -> Fmt.pf ppf "call [rip%+ld]" d
  | Jmp_rel d -> Fmt.pf ppf "jmp %+ld" d
  | Jcc_rel (cc, d) -> Fmt.pf ppf "j%s %+ld" (cc_name cc) d
  | Jmp_mem_rip d -> Fmt.pf ppf "jmp [rip%+ld]" d
  | Syscall -> Fmt.pf ppf "syscall"
  | Int80 -> Fmt.pf ppf "int $0x80"
  | Sysenter -> Fmt.pf ppf "sysenter"
  | Push_r r -> Fmt.pf ppf "push %s" (reg_name r)
  | Pop_r r -> Fmt.pf ppf "pop %s" (reg_name r)
  | Ret -> Fmt.pf ppf "ret"
  | Nop -> Fmt.pf ppf "nop"
  | Unknown b -> Fmt.pf ppf ".byte 0x%02x" b

let to_string t = Fmt.str "%a" pp t
