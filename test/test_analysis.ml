(* Tests for the static analysis engine: register tracking, syscall
   number and opcode recovery, reachability (dead code exclusion, the
   function-pointer over-approximation), cross-library resolution and
   the pseudo-file sweep. *)

module Api = Core.Apidb.Api
module Elf = Core.Elf
module Asm = Core.Asm
module P = Asm.Program
module Analysis = Core.Analysis
module Footprint = Analysis.Footprint

let analyze prog = Analysis.Binary.analyze (Asm.Builder.assemble prog)

let exe ?(needed = [ "libc.so.6" ]) funcs =
  P.executable ~entry_fn:"_start" ~needed funcs

let syscalls_of fp = Footprint.syscalls fp

let entry_closure bin =
  match Analysis.Binary.entry_points bin with
  | entry :: _ -> Analysis.Binary.local_closure bin ~start:entry
  | [] -> Alcotest.fail "no entry point"

let test_direct_syscall () =
  let bin =
    analyze (exe ~needed:[] [ P.func "_start" [ P.Direct_syscall 60 ] ])
  in
  let cl = entry_closure bin in
  Alcotest.(check (list int)) "syscall 60 found" [ 60 ]
    (syscalls_of cl.Analysis.Binary.cl_footprint)

let test_unknown_syscall_number () =
  let bin =
    analyze (exe ~needed:[] [ P.func "_start" [ P.Direct_syscall_unknown ] ])
  in
  let cl = entry_closure bin in
  Alcotest.(check (list int)) "no number recovered" []
    (syscalls_of cl.Analysis.Binary.cl_footprint);
  Alcotest.(check int) "counted as unresolved (Section 2.4)" 1
    cl.Analysis.Binary.cl_footprint.Footprint.unresolved_sites

let test_vectored_opcode () =
  let bin =
    analyze
      (exe ~needed:[]
         [ P.func "_start" [ P.Vectored_syscall (Api.Ioctl, 0x5401) ] ])
  in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check (list int)) "ioctl syscall" [ 16 ] (syscalls_of fp);
  Alcotest.(check bool) "TCGETS opcode recovered" true
    (List.mem (Api.Ioctl, 0x5401) (Footprint.vops fp))

let test_vectored_at_import_callsite () =
  (* opcode set at the call site of ioctl@plt (Section 3.3) *)
  let bin =
    analyze
      (exe [ P.func "_start" [ P.Call_import_vop ("ioctl", Api.Ioctl, 0x5413) ] ])
  in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check bool) "TIOCGWINSZ recovered at the call site" true
    (List.mem (Api.Ioctl, 0x5413) (Footprint.vops fp))

let test_syscall_helper_number () =
  (* syscall(__NR_getpid) through libc's generic wrapper *)
  let bin = analyze (exe [ P.func "_start" [ P.Call_syscall_import 39 ] ]) in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check (list int)) "number recovered from rdi" [ 39 ]
    (syscalls_of fp)

let test_dead_code_excluded () =
  let bin =
    analyze
      (exe ~needed:[]
         [ P.func "_start" [ P.Direct_syscall 1 ];
           P.func ~global:false "never_called" [ P.Direct_syscall 212 ] ])
  in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check (list int)) "unreachable lookup_dcookie excluded" [ 1 ]
    (syscalls_of fp)

let test_call_chain () =
  let bin =
    analyze
      (exe ~needed:[]
         [ P.func "_start" [ P.Call_local "a" ];
           P.func ~global:false "a" [ P.Call_local "b"; P.Direct_syscall 0 ];
           P.func ~global:false "b" [ P.Direct_syscall 1 ] ])
  in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check (list int)) "transitive closure" [ 0; 1 ] (syscalls_of fp)

let test_fnptr_over_approximation () =
  (* Section 7: a function whose address is taken is assumed callable *)
  let bin =
    analyze
      (exe ~needed:[]
         [ P.func "_start" [ P.Take_fnptr "cb" ];
           P.func ~global:false "cb" [ P.Direct_syscall 35 ] ])
  in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check (list int)) "callback included" [ 35 ] (syscalls_of fp);
  (* and without the over-approximation it disappears *)
  let entry = List.hd (Analysis.Binary.entry_points bin) in
  let narrow =
    Analysis.Binary.local_closure ~follow_fnptrs:false bin ~start:entry
  in
  (* the direct Call_reg edge still resolves the lea'd address in the
     same function, so check the lea target list instead *)
  ignore narrow;
  Alcotest.(check bool) "lea target recorded" true
    (match Hashtbl.find_opt bin.Analysis.Binary.fns "_start" with
     | Some fi -> fi.Analysis.Binary.fi_scan.Analysis.Scan.lea_code_targets <> []
     | None -> false)

let test_pseudo_file_lea () =
  let bin =
    analyze (exe ~needed:[] [ P.func "_start" [ P.Use_string "/proc/cpuinfo" ] ])
  in
  let fp = (entry_closure bin).Analysis.Binary.cl_footprint in
  Alcotest.(check (list string)) "hard-coded path found" [ "/proc/cpuinfo" ]
    (Footprint.pseudo_files fp)

let test_rodata_sweep_patterns () =
  (* sprintf-style patterns are caught by the binary-wide sweep *)
  let bin =
    analyze
      (exe ~needed:[]
         [ P.func "_start"
             [ P.Use_string "/proc/%d/cmdline"; P.Use_string "not-a-path" ] ])
  in
  Alcotest.(check (list string)) "pattern caught, plain string ignored"
    [ "/proc/%d/cmdline" ]
    (Footprint.pseudo_files bin.Analysis.Binary.rodata_strings)

let test_register_clobbering () =
  (* a call clobbers rax: the subsequent syscall number is unknown *)
  let bin =
    analyze
      (exe
         [ P.func "_start"
             [ P.Direct_syscall 2 (* sets rax=2, then syscall *);
               P.Call_import "printf" ];
           (* rax now unknown; a bare syscall with stale rax must not
              re-record 2 *)
           P.func ~global:false "unused" [] ])
  in
  ignore bin;
  (* handled more precisely below with a hand-built instruction list *)
  let ctx =
    { Analysis.Scan.resolve_code = (fun _ -> None); string_at = (fun _ -> None) }
  in
  let open Core.X86.Insn in
  let insns =
    [ (0, Mov_ri (RAX, 2L), 5); (5, Call_rel 100l, 5); (10, Syscall, 2) ]
  in
  let result = Analysis.Scan.scan ctx insns in
  Alcotest.(check (list int)) "clobbered rax not used" []
    (syscalls_of result.Analysis.Scan.direct);
  Alcotest.(check int) "stale site counted unresolved" 1
    result.Analysis.Scan.direct.Footprint.unresolved_sites

let test_xor_zero_idiom () =
  let ctx =
    { Analysis.Scan.resolve_code = (fun _ -> None); string_at = (fun _ -> None) }
  in
  let open Core.X86.Insn in
  let insns = [ (0, Xor_rr (RAX, RAX), 3); (3, Syscall, 2) ] in
  let result = Analysis.Scan.scan ctx insns in
  Alcotest.(check (list int)) "xor rax,rax reads as syscall 0 (read)" [ 0 ]
    (syscalls_of result.Analysis.Scan.direct)

(* --- cross-library resolution ------------------------------------------ *)

let make_world () =
  (* a tiny libc exporting write_wrap (-> write) and a libfoo whose
     foo_log calls write_wrap *)
  let libc =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"libc.so.6" ~needed:[]
            [ P.func "write_wrap" [ P.Direct_syscall 1 ];
              P.func "exit_wrap" [ P.Direct_syscall 231 ] ]))
  in
  let libfoo =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"libfoo.so.1" ~needed:[ "libc.so.6" ]
            [ P.func "foo_log" [ P.Call_import "write_wrap" ];
              P.func "foo_quiet" [ P.Padding 4 ] ]))
  in
  Analysis.Resolve.make_world
    ~libc_family:(fun s -> s = "libc.so.6")
    [ ("libc.so.6", libc); ("libfoo.so.1", libfoo) ]

let test_cross_library_closure () =
  let world = make_world () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[ "libfoo.so.1" ] ~interp:None
         [ P.func "_start" [ P.Call_import "foo_log" ] ])
  in
  let fp = Analysis.Resolve.binary_footprint world bin in
  Alcotest.(check (list int)) "write reached through two libraries" [ 1 ]
    (syscalls_of fp)

let test_libc_sym_attribution () =
  let world = make_world () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[ "libc.so.6" ] ~interp:None
         [ P.func "_start" [ P.Call_import "write_wrap" ] ])
  in
  let fp = Analysis.Resolve.binary_footprint world bin in
  Alcotest.(check bool) "direct libc import marked as libc API usage" true
    (Api.Set.mem (Api.Libc_sym "write_wrap") fp.Footprint.apis);
  (* libfoo's own use of libc is attributed too (transitive) *)
  let bin2 =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[ "libfoo.so.1" ] ~interp:None
         [ P.func "_start" [ P.Call_import "foo_log" ] ])
  in
  let fp2 = Analysis.Resolve.binary_footprint world bin2 in
  Alcotest.(check bool) "transitive libc usage attributed" true
    (Api.Set.mem (Api.Libc_sym "write_wrap") fp2.Footprint.apis)

let test_unused_export_not_included () =
  let world = make_world () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[ "libc.so.6" ] ~interp:None
         [ P.func "_start" [ P.Call_import "exit_wrap" ] ])
  in
  let fp = Analysis.Resolve.binary_footprint world bin in
  Alcotest.(check (list int)) "only the called export's syscalls" [ 231 ]
    (syscalls_of fp)

let test_memoization_consistency () =
  let world = make_world () in
  let a = Analysis.Resolve.export_footprint world "libfoo.so.1" "foo_log" in
  let b = Analysis.Resolve.export_footprint world "libfoo.so.1" "foo_log" in
  Alcotest.(check bool) "memoized result is stable" true
    (Api.Set.equal a.Footprint.apis b.Footprint.apis)

let test_memo_hits_counted () =
  let world = make_world () in
  ignore (Analysis.Resolve.export_footprint world "libfoo.so.1" "foo_log");
  let misses = world.Analysis.Resolve.stats.Analysis.Resolve.memo_misses in
  ignore (Analysis.Resolve.export_footprint world "libfoo.so.1" "foo_log");
  ignore (Analysis.Resolve.export_footprint world "libfoo.so.1" "foo_log");
  let stats = world.Analysis.Resolve.stats in
  Alcotest.(check bool) "repeated lookups served from the memo" true
    (stats.Analysis.Resolve.memo_hits >= 2);
  Alcotest.(check int) "no closure re-resolved" misses
    stats.Analysis.Resolve.memo_misses

let test_ld_so_computed_once () =
  (* the dynamic linker's closure is the same for every executable:
     it must be resolved at most once per world *)
  let ld =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"ld-linux-x86-64.so.2" ~needed:[]
            [ P.func "_dl_start" [ P.Direct_syscall 9 (* mmap *) ] ]))
  in
  let libc =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"libc.so.6" ~needed:[]
            [ P.func "write_wrap" [ P.Direct_syscall 1 ] ]))
  in
  let world =
    Analysis.Resolve.make_world ~ld_so:ld
      ~libc_family:(fun s -> s = "libc.so.6")
      [ ("libc.so.6", libc) ]
  in
  let fps =
    List.init 5 (fun _ ->
        let bin =
          analyze
            (P.executable ~entry_fn:"_start" ~needed:[ "libc.so.6" ]
               [ P.func "_start" [ P.Call_import "write_wrap" ] ])
        in
        Analysis.Resolve.binary_footprint world bin)
  in
  List.iter
    (fun fp ->
      Alcotest.(check bool) "ld.so startup work included" true
        (List.mem 9 (syscalls_of fp)))
    fps;
  Alcotest.(check int) "ld.so closure resolved once across 5 binaries" 1
    world.Analysis.Resolve.stats.Analysis.Resolve.ld_computations

let test_import_cycle_safety () =
  (* mutually recursive libraries terminate and see each other's
     syscalls, and the cycle guard fully unwinds *)
  let liba =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"liba.so.1" ~needed:[ "libb.so.1" ]
            [ P.func "a_fn" [ P.Call_import "b_fn"; P.Direct_syscall 1 ] ]))
  in
  let libb =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"libb.so.1" ~needed:[ "liba.so.1" ]
            [ P.func "b_fn" [ P.Call_import "a_fn"; P.Direct_syscall 2 ] ]))
  in
  let world =
    Analysis.Resolve.make_world
      ~libc_family:(fun _ -> false)
      [ ("liba.so.1", liba); ("libb.so.1", libb) ]
  in
  let fp = Analysis.Resolve.export_footprint world "liba.so.1" "a_fn" in
  Alcotest.(check (list int)) "both sides of the cycle reached" [ 1; 2 ]
    (syscalls_of fp);
  Alcotest.(check int) "cycle guard unwound" 0
    (Hashtbl.length world.Analysis.Resolve.in_progress);
  (* re-resolving after the cycle cut must agree *)
  let fp' = Analysis.Resolve.export_footprint world "liba.so.1" "a_fn" in
  Alcotest.(check bool) "memoized cycle result stable" true
    (Api.Set.equal fp.Footprint.apis fp'.Footprint.apis)

let test_import_set_union_cached () =
  (* executables sharing an import set share one pre-unioned
     footprint; results must match a fresh resolution *)
  let world = make_world () in
  let mk name =
    analyze
      (P.executable ~entry_fn:"_start"
         ~needed:[ "libc.so.6"; "libfoo.so.1" ] ~interp:None
         [ P.func "_start"
             [ P.Call_import "foo_log"; P.Call_import "exit_wrap";
               P.Use_string name ] ])
  in
  let fp1 = Analysis.Resolve.binary_footprint world (mk "/proc/one") in
  let fp2 = Analysis.Resolve.binary_footprint world (mk "/proc/two") in
  Alcotest.(check (list int)) "first resolution" [ 1; 231 ]
    (syscalls_of fp1);
  Alcotest.(check (list int)) "cached union resolution agrees" [ 1; 231 ]
    (syscalls_of fp2);
  Alcotest.(check int) "one union cached for the shared import set" 1
    (Hashtbl.length world.Analysis.Resolve.union_cache)

(* --- dynamic tracer (strace analogue) ----------------------------------- *)

let trace_world_and_exe () =
  let libc =
    Analysis.Binary.analyze
      (Asm.Builder.assemble
         (P.shared_lib ~soname:"libc.so.6" ~needed:[]
            [ P.func "do_write" [ P.Direct_syscall 1 ];
              P.func "do_exit" [ P.Direct_syscall 231 ] ]))
  in
  let world =
    Analysis.Resolve.make_world
      ~libc_family:(fun s -> s = "libc.so.6")
      [ ("libc.so.6", libc) ]
  in
  (world, libc)

let test_trace_linear () =
  let world, _ = trace_world_and_exe () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[ "libc.so.6" ] ~interp:None
         [ P.func "_start"
             [ P.Direct_syscall 0; P.Call_import "do_write";
               P.Call_local "sub"; P.Use_string "/dev/null" ];
           P.func ~global:false "sub" [ P.Direct_syscall 2 ] ])
  in
  let r = Analysis.Trace.run world bin in
  Alcotest.(check bool) "runs to completion" true
    (r.Analysis.Trace.outcome = Analysis.Trace.Finished);
  Alcotest.(check (list int)) "executes read, write (via libc), open"
    [ 0; 1; 2 ]
    (syscalls_of r.Analysis.Trace.footprint);
  Alcotest.(check (list string)) "observes the hard-coded path"
    [ "/dev/null" ]
    (Analysis.Footprint.pseudo_files r.Analysis.Trace.footprint)

let test_trace_skips_dead_code () =
  let world, _ = trace_world_and_exe () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[] ~interp:None
         [ P.func "_start" [ P.Direct_syscall 1 ];
           P.func ~global:false "dead" [ P.Direct_syscall 212 ] ])
  in
  let r = Analysis.Trace.run world bin in
  Alcotest.(check (list int)) "dead code never executes" [ 1 ]
    (syscalls_of r.Analysis.Trace.footprint)

let test_trace_follows_fnptr () =
  let world, _ = trace_world_and_exe () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[] ~interp:None
         [ P.func "_start" [ P.Take_fnptr "cb" ];
           P.func ~global:false "cb" [ P.Direct_syscall 35 ] ])
  in
  let r = Analysis.Trace.run world bin in
  Alcotest.(check (list int)) "function pointer target executes" [ 35 ]
    (syscalls_of r.Analysis.Trace.footprint)

let test_trace_vop_at_callsite () =
  let world, _ = trace_world_and_exe () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[] ~interp:None
         [ P.func "_start" [ P.Vectored_syscall (Api.Ioctl, 0x5413) ] ])
  in
  let r = Analysis.Trace.run world bin in
  Alcotest.(check bool) "opcode observed at run time" true
    (List.mem (Api.Ioctl, 0x5413)
       (Analysis.Footprint.vops r.Analysis.Trace.footprint))

let test_trace_step_limit () =
  let world, _ = trace_world_and_exe () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[] ~interp:None
         [ P.func "_start" (List.init 200 (fun _ -> P.Padding 10)) ])
  in
  let r =
    Analysis.Trace.run
      ~limits:{ Analysis.Trace.max_steps = 50; max_depth = 8 }
      world bin
  in
  Alcotest.(check bool) "step limit enforced" true
    (r.Analysis.Trace.outcome = Analysis.Trace.Step_limit)

let test_trace_containment () =
  (* dynamic syscalls/paths must be a subset of the static footprint *)
  let world, _ = trace_world_and_exe () in
  let bin =
    analyze
      (P.executable ~entry_fn:"_start" ~needed:[ "libc.so.6" ] ~interp:None
         [ P.func "_start"
             [ P.Direct_syscall 0; P.Call_import "do_write";
               P.Call_import "do_exit"; P.Use_string "/proc/stat";
               P.Vectored_syscall (Api.Fcntl, 1) ] ])
  in
  Alcotest.(check int) "no static misses" 0
    (Api.Set.cardinal (Analysis.Trace.static_misses world bin))


let () =
  Alcotest.run "analysis"
    [ ( "scan",
        [ Alcotest.test_case "direct syscall" `Quick test_direct_syscall;
          Alcotest.test_case "unknown number" `Quick
            test_unknown_syscall_number;
          Alcotest.test_case "vectored opcode" `Quick test_vectored_opcode;
          Alcotest.test_case "opcode at import call site" `Quick
            test_vectored_at_import_callsite;
          Alcotest.test_case "syscall() helper" `Quick
            test_syscall_helper_number;
          Alcotest.test_case "register clobbering" `Quick
            test_register_clobbering;
          Alcotest.test_case "xor zero idiom" `Quick test_xor_zero_idiom ] );
      ( "reachability",
        [ Alcotest.test_case "dead code excluded" `Quick
            test_dead_code_excluded;
          Alcotest.test_case "call chains" `Quick test_call_chain;
          Alcotest.test_case "fn-pointer over-approximation" `Quick
            test_fnptr_over_approximation;
          Alcotest.test_case "pseudo-file via lea" `Quick
            test_pseudo_file_lea;
          Alcotest.test_case "rodata sweep patterns" `Quick
            test_rodata_sweep_patterns ] );
      ( "tracer",
        [ Alcotest.test_case "linear execution" `Quick test_trace_linear;
          Alcotest.test_case "dead code skipped" `Quick
            test_trace_skips_dead_code;
          Alcotest.test_case "fn pointers followed" `Quick
            test_trace_follows_fnptr;
          Alcotest.test_case "opcodes observed" `Quick
            test_trace_vop_at_callsite;
          Alcotest.test_case "step limit" `Quick test_trace_step_limit;
          Alcotest.test_case "static containment" `Quick
            test_trace_containment ] );
      ( "resolution",
        [ Alcotest.test_case "cross-library closure" `Quick
            test_cross_library_closure;
          Alcotest.test_case "libc attribution" `Quick
            test_libc_sym_attribution;
          Alcotest.test_case "unused exports excluded" `Quick
            test_unused_export_not_included;
          Alcotest.test_case "memoization" `Quick
            test_memoization_consistency;
          Alcotest.test_case "memo hit accounting" `Quick
            test_memo_hits_counted;
          Alcotest.test_case "ld.so resolved once" `Quick
            test_ld_so_computed_once;
          Alcotest.test_case "import cycle safety" `Quick
            test_import_cycle_safety;
          Alcotest.test_case "import-set union cache" `Quick
            test_import_set_union_cached ] ) ]

