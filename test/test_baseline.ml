(* Tests for the bench-baseline reader and the stage-set comparison
   behind [--check-against]: the committed baseline must keep loading,
   and the drift logic must gate only the intersection of stage names
   so baselines survive stages being added or removed by later PRs. *)

module B = Core.Perf.Baseline

(* dune copies the committed baseline into the build tree; under
   [dune runtest] the cwd is _build/default/test, under [dune exec]
   it is the workspace root *)
let baseline_path =
  let candidates =
    [ "../bench/baseline_200.json";
      "bench/baseline_200.json";
      "_build/default/bench/baseline_200.json" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let load_exn path =
  match B.load path with
  | Ok t -> t
  | Error msg -> Alcotest.failf "load %s: %s" path msg

let test_load_committed () =
  let t = load_exn baseline_path in
  (match t.B.stage_total_s with
   | Some s ->
     Alcotest.(check (float 1e-6)) "stage_total_s" 1.079102 s
   | None -> Alcotest.fail "committed baseline lost its stage_total_s");
  Alcotest.(check int) "committed baseline has 22 stages" 22
    (List.length t.B.stages);
  let find name =
    List.find_opt (fun s -> s.B.bs_name = name) t.B.stages
  in
  (match find "resolve" with
   | Some s ->
     Alcotest.(check (float 1e-9)) "resolve seconds" 0.135910 s.B.bs_seconds
   | None -> Alcotest.fail "resolve stage missing");
  if find "no-such-stage" <> None then
    Alcotest.fail "phantom stage parsed"

let test_compare_shared_only () =
  (* the gate sums only stages both sides have; one-sided stages are
     reported, never gated — a later PR adding a stage must not fail
     an old baseline, and a removed stage must not hide a regression *)
  let baseline =
    {
      B.stage_total_s = Some 1.0;
      stages =
        [ { B.bs_name = "alpha"; bs_seconds = 0.4 };
          { B.bs_name = "beta"; bs_seconds = 0.5 };
          { B.bs_name = "gone"; bs_seconds = 0.1 } ];
    }
  in
  let now = [ ("alpha", 0.8); ("beta", 0.25); ("brand-new", 9.9) ] in
  let v = B.compare_stages baseline now in
  Alcotest.(check (float 1e-9)) "baseline side sums shared only" 0.9
    v.B.shared_baseline_s;
  Alcotest.(check (float 1e-9)) "now side sums shared only" 1.05
    v.B.shared_now_s;
  Alcotest.(check (list string)) "shared names" [ "alpha"; "beta" ]
    (List.sort compare v.B.shared);
  Alcotest.(check (list string)) "removed since baseline" [ "gone" ]
    v.B.only_baseline;
  Alcotest.(check (list string)) "added since baseline" [ "brand-new" ]
    v.B.only_now

let test_compare_disjoint () =
  (* a fully drifted stage set shares nothing: the caller must detect
     shared = [] and refuse to pass vacuously *)
  let baseline =
    { B.stage_total_s = None;
      stages = [ { B.bs_name = "old"; bs_seconds = 1.0 } ] }
  in
  let v = B.compare_stages baseline [ ("new", 2.0) ] in
  Alcotest.(check (list string)) "nothing shared" [] v.B.shared;
  Alcotest.(check (float 0.0)) "no gated seconds" 0.0 v.B.shared_now_s

let with_temp_json body f =
  let path = Filename.temp_file "lapis-baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> output_string oc body);
      f path)

let test_load_total_only () =
  (* baselines written before the stages array existed: total only *)
  with_temp_json {|{
  "packages": 50,
  "stage_total_s": 0.25
}|}
    (fun path ->
      let t = load_exn path in
      Alcotest.(check int) "no stages" 0 (List.length t.B.stages);
      match t.B.stage_total_s with
      | Some s -> Alcotest.(check (float 1e-9)) "total" 0.25 s
      | None -> Alcotest.fail "total lost")

let test_load_tolerates_unknown () =
  (* fields this reader does not know must not break it *)
  with_temp_json
    {|{
  "mystery": { "nested": [1, 2] },
  "stage_total_s": 0.5,
  "stages": [
    { "name": "one", "seconds": 0.125, "entries": 3, "extra": true }
  ]
}|}
    (fun path ->
      let t = load_exn path in
      Alcotest.(check int) "one stage" 1 (List.length t.B.stages);
      let s = List.hd t.B.stages in
      Alcotest.(check string) "name" "one" s.B.bs_name;
      Alcotest.(check (float 1e-9)) "seconds" 0.125 s.B.bs_seconds)

let test_load_missing_file () =
  match B.load "/nonexistent/lapis-baseline.json" with
  | Ok _ -> Alcotest.fail "loaded a file that does not exist"
  | Error _ -> ()

let () =
  Alcotest.run "baseline"
    [ ( "load",
        [ Alcotest.test_case "committed baseline_200" `Quick
            test_load_committed;
          Alcotest.test_case "total-only fallback" `Quick
            test_load_total_only;
          Alcotest.test_case "tolerates unknown fields" `Quick
            test_load_tolerates_unknown;
          Alcotest.test_case "missing file" `Quick test_load_missing_file ]
      );
      ( "compare",
        [ Alcotest.test_case "gates the intersection" `Quick
            test_compare_shared_only;
          Alcotest.test_case "disjoint sets" `Quick test_compare_disjoint ]
      )
    ]
