(* Property tests for the packed bitset: every operation must agree
   with the obvious [Set.Make(Int)] reference implementation, and the
   wire codec must round-trip bit-for-bit. The query engine's
   correctness rests on these — a wrong word-wise subset test would
   silently skew every completeness number. *)

module Bitset = Core.Perf.Bitset
module IntSet = Set.Make (Int)

(* --- generators -------------------------------------------------------- *)

(* Universe sizes straddling the word boundaries (63 bits per word on
   64-bit OCaml): empty tail, exactly one word, one word plus a bit. *)
let gen_universe = QCheck2.Gen.oneof
    [ QCheck2.Gen.int_range 1 10;
      QCheck2.Gen.int_range 60 70;
      QCheck2.Gen.int_range 120 200 ]

let gen_elems u = QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 (u - 1)))

(* one universe, two element lists over it: the binary-op generator *)
let gen_pair =
  QCheck2.Gen.(
    let* u = gen_universe in
    let* a = gen_elems u in
    let* b = gen_elems u in
    return (u, a, b))

let print_pair (u, a, b) =
  Printf.sprintf "u=%d a=[%s] b=[%s]" u
    (String.concat ";" (List.map string_of_int a))
    (String.concat ";" (List.map string_of_int b))

let bits u l = Bitset.of_list u l
let set l = IntSet.of_list l

let same_members b s =
  Bitset.to_sorted_array b = Array.of_list (IntSet.elements s)

(* --- properties -------------------------------------------------------- *)

let prop_membership =
  QCheck2.Test.make ~count:300 ~name:"mem/cardinal/is_empty vs Set"
    ~print:print_pair gen_pair (fun (u, a, _) ->
      let b = bits u a and s = set a in
      Bitset.cardinal b = IntSet.cardinal s
      && Bitset.is_empty b = IntSet.is_empty s
      && List.for_all (fun i -> Bitset.mem b i = IntSet.mem i s)
           (List.init u Fun.id)
      && (* ids outside the universe are absent, not an error *)
      not (Bitset.mem b u) && not (Bitset.mem b (u + 100)))

let prop_add_remove =
  QCheck2.Test.make ~count:300 ~name:"add/remove vs Set" ~print:print_pair
    gen_pair (fun (u, a, b) ->
      let bs = bits u a and s = ref (set a) in
      List.for_all
        (fun i ->
          if IntSet.mem i !s then begin
            Bitset.remove bs i;
            s := IntSet.remove i !s
          end
          else begin
            Bitset.add bs i;
            s := IntSet.add i !s
          end;
          same_members bs !s)
        b)

let prop_algebra =
  QCheck2.Test.make ~count:300 ~name:"inter/union/subset/equal vs Set"
    ~print:print_pair gen_pair (fun (u, a, b) ->
      let ba = bits u a and bb = bits u b in
      let sa = set a and sb = set b in
      same_members (Bitset.inter ba bb) (IntSet.inter sa sb)
      && same_members (Bitset.union ba bb) (IntSet.union sa sb)
      && Bitset.subset ba bb = IntSet.subset sa sb
      && Bitset.subset (Bitset.inter ba bb) ba
      && Bitset.subset ba (Bitset.union ba bb)
      && Bitset.equal ba bb = IntSet.equal sa sb
      && (* the operands survive the fresh-result operations *)
      same_members ba sa && same_members bb sb)

let prop_union_into =
  QCheck2.Test.make ~count:300 ~name:"union_into accumulates"
    ~print:print_pair gen_pair (fun (u, a, b) ->
      let into = bits u a and src = bits u b in
      Bitset.union_into ~into src;
      same_members into (IntSet.union (set a) (set b))
      && same_members src (set b))

let prop_iter_ascending =
  QCheck2.Test.make ~count:300 ~name:"iter/fold ascending" ~print:print_pair
    gen_pair (fun (u, a, _) ->
      let b = bits u a in
      let seen = ref [] in
      Bitset.iter (fun i -> seen := i :: !seen) b;
      let via_iter = List.rev !seen in
      let via_fold = List.rev (Bitset.fold (fun i acc -> i :: acc) b []) in
      via_iter = IntSet.elements (set a) && via_fold = via_iter)

let prop_bytes_roundtrip =
  QCheck2.Test.make ~count:300 ~name:"of_bytes ∘ to_bytes = id"
    ~print:print_pair gen_pair (fun (u, a, _) ->
      let b = bits u a in
      let wire = Bitset.to_bytes b in
      String.length wire = (u + 7) / 8
      &&
      match Bitset.of_bytes u wire with
      | Error _ -> false
      | Ok b' -> Bitset.equal b b' && Bitset.key b = Bitset.key b')

let prop_key_iff_equal =
  QCheck2.Test.make ~count:300 ~name:"key equal iff sets equal"
    ~print:print_pair gen_pair (fun (u, a, b) ->
      let ba = bits u a and bb = bits u b in
      (Bitset.key ba = Bitset.key bb) = IntSet.equal (set a) (set b))

(* --- golden edge cases -------------------------------------------------- *)

let test_word_boundaries () =
  (* exercise the exact bit positions where an off-by-one in the word
     index or the tail mask would bite *)
  List.iter
    (fun u ->
      let b = Bitset.create u in
      Bitset.add b 0;
      Bitset.add b (u - 1);
      Alcotest.(check int) (Printf.sprintf "u=%d cardinal" u)
        (if u = 1 then 1 else 2)
        (Bitset.cardinal b);
      Alcotest.(check bool) "low bit" true (Bitset.mem b 0);
      Alcotest.(check bool) "high bit" true (Bitset.mem b (u - 1));
      let full = Bitset.of_list u (List.init u Fun.id) in
      Alcotest.(check int) "full cardinal" u (Bitset.cardinal full);
      Alcotest.(check bool) "subset of full" true (Bitset.subset b full))
    [ 1; 62; 63; 64; 126; 127 ]

let test_of_bytes_rejects () =
  let b = Bitset.of_list 10 [ 0; 9 ] in
  let wire = Bitset.to_bytes b in
  (match Bitset.of_bytes 10 (wire ^ "\x00") with
   | Ok _ -> Alcotest.fail "long input accepted"
   | Error _ -> ());
  (match Bitset.of_bytes 10 "" with
   | Ok _ -> Alcotest.fail "short input accepted"
   | Error _ -> ());
  (* a set bit beyond the universe in the final partial byte *)
  match Bitset.of_bytes 10 "\x00\xff" with
  | Ok _ -> Alcotest.fail "out-of-universe bits accepted"
  | Error _ -> ()

let test_add_out_of_universe () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "add past universe"
    (Invalid_argument "Bitset.add: out of universe") (fun () ->
      Bitset.add b 10)

let () =
  Alcotest.run "bitset"
    [ ( "vs-set-reference",
        List.map QCheck_alcotest.to_alcotest
          [ prop_membership; prop_add_remove; prop_algebra;
            prop_union_into; prop_iter_ascending; prop_bytes_roundtrip;
            prop_key_iff_equal ] );
      ( "edges",
        [ Alcotest.test_case "word boundaries" `Quick test_word_boundaries;
          Alcotest.test_case "of_bytes rejects" `Quick test_of_bytes_rejects;
          Alcotest.test_case "add out of universe" `Quick
            test_add_out_of_universe ] )
    ]
