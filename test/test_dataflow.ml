(* Tests for the CFG dataflow engine: the bounded constant-set
   lattice, fixpoint termination on loops, branch joins, wrapper
   summaries resolved at call sites, dead-block exclusion, and the
   engine-vs-engine precision properties (dataflow never recovers
   less than the linear scan on decoy-free programs). *)

module Api = Core.Apidb.Api
module Asm = Core.Asm
module P = Asm.Program
module Analysis = Core.Analysis
module Footprint = Analysis.Footprint
module Dataflow = Analysis.Dataflow
module Audit = Analysis.Audit
open Core.X86

let null_ctx =
  { Analysis.Scan.resolve_code = (fun _ -> None); string_at = (fun _ -> None) }

(* Assign addresses to an instruction list the way the decoder would. *)
let listing insns =
  let addr = ref 0 in
  List.map
    (fun i ->
      let a = !addr in
      let len = Encode.length i in
      addr := a + len;
      (a, i, len))
    insns

let exe ?(needed = []) funcs = P.executable ~entry_fn:"_start" ~needed funcs

let both_modes prog = Audit.both_modes (Asm.Builder.assemble prog)

let syscalls_of = Footprint.syscalls

(* --- lattice ----------------------------------------------------------- *)

let test_join_values () =
  let open Dataflow in
  Alcotest.(check bool) "consts merge" true
    (join_value (Consts [ 1L ]) (Consts [ 2L ]) = Consts [ 1L; 2L ]);
  Alcotest.(check bool) "join is idempotent" true
    (join_value (Consts [ 5L ]) (Consts [ 5L ]) = Consts [ 5L ]);
  let big = Consts (List.init max_consts (fun i -> Int64.of_int i)) in
  Alcotest.(check bool) "cap widens to Top" true
    (join_value big (Consts [ 99L ]) = Top);
  Alcotest.(check bool) "mismatched params widen" true
    (join_value (Param Insn.RDI) (Param Insn.RSI) = Top)

(* --- branch join ------------------------------------------------------- *)

let test_branch_join () =
  (* cmp rdi, 0; je a; rax <- 39 or rax <- 60; syscall: both arms must
     survive the join *)
  let linear, dataflow =
    both_modes (exe [ P.func "_start" [ P.Cond_branch_syscall (39, 60) ] ])
  in
  Alcotest.(check (list int)) "dataflow joins both arms" [ 39; 60 ]
    (syscalls_of dataflow);
  Alcotest.(check (list int)) "linear sees the fallthrough arm only" [ 60 ]
    (syscalls_of linear)

(* --- loops ------------------------------------------------------------- *)

let test_loop_invariant_resolves () =
  (* the loop never touches rax, so the fixpoint must keep the
     constant across the back edge:
       mov rax, 39; L: sub rdi, 1; cmp rdi, 0; jne L; syscall; ret *)
  let insns =
    [ Insn.Mov_ri (Insn.RAX, 39L);       (* 0, len 5 *)
      Insn.Sub_ri (Insn.RDI, 1l);        (* 5, len 7 *)
      Insn.Cmp_ri (Insn.RDI, 0l);        (* 12, len 7 *)
      Insn.Jcc_rel (Insn.cc_ne, -20l);   (* 19, len 6: back to 5 *)
      Insn.Syscall;                      (* 25 *)
      Insn.Ret ]
  in
  let r = Dataflow.analyze null_ctx (listing insns) in
  Alcotest.(check (list int)) "loop-invariant rax resolves" [ 39 ]
    (syscalls_of r.Dataflow.direct);
  Alcotest.(check int) "nothing unresolved" 0
    r.Dataflow.direct.Footprint.unresolved_sites

let test_loop_widening_terminates () =
  (* rax is incremented each iteration: the constant set grows past
     the cap and must widen to Top instead of diverging *)
  let insns =
    [ Insn.Mov_ri (Insn.RAX, 0L);        (* 0, len 5 *)
      Insn.Add_ri (Insn.RAX, 1l);        (* 5, len 7 *)
      Insn.Cmp_ri (Insn.RDI, 0l);        (* 12, len 7 *)
      Insn.Jcc_rel (Insn.cc_ne, -20l);   (* 19, len 6: back to 5 *)
      Insn.Syscall;
      Insn.Ret ]
  in
  let r = Dataflow.analyze null_ctx (listing insns) in
  Alcotest.(check (list int)) "widened rax recovers nothing" []
    (syscalls_of r.Dataflow.direct);
  Alcotest.(check int) "widened site counts unresolved" 1
    r.Dataflow.direct.Footprint.unresolved_sites

let test_fuel_budget () =
  (* same loop as above: converges under the default budget, reports
     exhaustion (instead of spinning or silently stopping) when
     starved — the partial result still comes back *)
  let insns =
    [ Insn.Mov_ri (Insn.RAX, 39L);
      Insn.Sub_ri (Insn.RDI, 1l);
      Insn.Cmp_ri (Insn.RDI, 0l);
      Insn.Jcc_rel (Insn.cc_ne, -20l);
      Insn.Syscall;
      Insn.Ret ]
  in
  let full = Dataflow.analyze null_ctx (listing insns) in
  Alcotest.(check bool) "default budget converges" false
    full.Dataflow.fuel_exhausted;
  let starved = Dataflow.analyze ~fuel:1 null_ctx (listing insns) in
  Alcotest.(check bool) "starved fixpoint reports exhaustion" true
    starved.Dataflow.fuel_exhausted

(* --- wrapper summaries ------------------------------------------------- *)

let test_wrapper_summary () =
  (* mov rdi, 318; call sc_dispatch — the wrapper body is
     mov rax, rdi; syscall, resolvable only through its summary *)
  let prog =
    exe
      [ P.func "_start" [ P.Call_wrapper ("sc_dispatch", 318) ];
        P.func ~global:false "sc_dispatch" [ P.Arg_syscall ] ]
  in
  let linear, dataflow = both_modes prog in
  Alcotest.(check (list int)) "summary resolves getrandom" [ 318 ]
    (syscalls_of dataflow);
  Alcotest.(check int) "no unresolved sites left" 0
    dataflow.Footprint.unresolved_sites;
  Alcotest.(check (list int)) "linear cannot see through the wrapper" []
    (syscalls_of linear);
  Alcotest.(check int) "linear leaves the wrapper site unresolved" 1
    linear.Footprint.unresolved_sites

let test_wrapper_two_callers () =
  let prog =
    exe
      [ P.func "_start"
          [ P.Call_wrapper ("sc_dispatch", 39);
            P.Call_wrapper ("sc_dispatch", 60) ];
        P.func ~global:false "sc_dispatch" [ P.Arg_syscall ] ]
  in
  let _, dataflow = both_modes prog in
  Alcotest.(check (list int)) "each call site contributes its number"
    [ 39; 60 ] (syscalls_of dataflow)

(* --- the acceptance demonstration: clobber skipped by a branch --------- *)

let test_skip_clobber () =
  (* mov rax, 57; cmp rdi, 0; je over; call cold_path; over: syscall.
     The linear scan kills rax at the call and reports an unresolved
     site; the CFG engine follows the branch that skips the call. *)
  let prog =
    exe
      [ P.func "_start" [ P.Skip_clobber_syscall (57, "cold_path") ];
        P.func ~global:false "cold_path" [ P.Padding 6 ] ]
  in
  let linear, dataflow = both_modes prog in
  Alcotest.(check (list int)) "linear misses fork" [] (syscalls_of linear);
  Alcotest.(check int) "linear: unresolved site" 1
    linear.Footprint.unresolved_sites;
  Alcotest.(check (list int)) "dataflow resolves fork" [ 57 ]
    (syscalls_of dataflow);
  Alcotest.(check int) "dataflow: site resolved" 0
    dataflow.Footprint.unresolved_sites;
  Alcotest.(check bool) "strictly lower unresolved rate" true
    (dataflow.Footprint.unresolved_sites < linear.Footprint.unresolved_sites)

(* --- dead blocks ------------------------------------------------------- *)

let test_jump_over_decoy () =
  (* mov rax, 201; jmp over; mov rax, 212 (dead); over: syscall — the
     linear scan reads the dead store (a false positive) and loses the
     live one (a false negative); the CFG engine does neither *)
  let linear, dataflow =
    both_modes (exe [ P.func "_start" [ P.Jump_over_decoy_syscall (201, 212) ] ])
  in
  Alcotest.(check (list int)) "dataflow keeps the live value" [ 201 ]
    (syscalls_of dataflow);
  Alcotest.(check (list int)) "linear reads the dead store" [ 212 ]
    (syscalls_of linear)

(* --- vectored opcode through the libc syscall() helper ----------------- *)

let test_vop_via_syscall_helper () =
  (* syscall(__NR_ioctl, fd, TCSETS): number in rdi, opcode in rdx *)
  let prog =
    exe ~needed:[ "libc.so.6" ]
      [ P.func "_start" [ P.Call_syscall_import_vop (Api.Ioctl, 0x5402) ] ]
  in
  let linear, dataflow = both_modes prog in
  List.iter
    (fun (label, fp) ->
      Alcotest.(check (list int)) (label ^ ": ioctl number from rdi") [ 16 ]
        (syscalls_of fp);
      Alcotest.(check bool) (label ^ ": TCSETS opcode from rdx") true
        (List.mem (Api.Ioctl, 0x5402) (Footprint.vops fp)))
    [ ("linear", linear); ("dataflow", dataflow) ]

(* --- properties -------------------------------------------------------- *)

(* Random programs over every generator pattern except the dead-code
   decoy (whose whole point is a linear-scan false positive that the
   CFG engine rightly refuses to report). *)
let gen_ops =
  let open QCheck2.Gen in
  let nr = oneofl [ 0; 1; 2; 39; 57; 60; 201; 231; 318 ] in
  let vop =
    oneofl [ (Api.Ioctl, 0x5401); (Api.Fcntl, 2); (Api.Prctl, 15) ]
  in
  let op =
    oneof
      [ map (fun n -> P.Direct_syscall n) nr;
        return P.Direct_syscall_unknown;
        map2 (fun a b -> P.Cond_branch_syscall (a, b)) nr nr;
        map (fun n -> P.Skip_clobber_syscall (n, "cold_path")) nr;
        map (fun n -> P.Call_wrapper ("sc_dispatch", n)) nr;
        map (fun (v, c) -> P.Vectored_syscall (v, c)) vop;
        map (fun n -> P.Call_syscall_import n) nr;
        map (fun (v, c) -> P.Call_syscall_import_vop (v, c)) vop;
        return (P.Use_string "/proc/self/maps");
        map (fun n -> P.Padding (1 + n)) (int_bound 8) ]
  in
  list_size (int_range 1 12) op

let program_of_ops ops =
  exe ~needed:[ "libc.so.6" ]
    [ P.func "_start" ops;
      P.func ~global:false "cold_path" [ P.Padding 6 ];
      P.func ~global:false "sc_dispatch" [ P.Arg_syscall ] ]

let prop_dataflow_superset =
  QCheck2.Test.make ~name:"dataflow recovers a superset of linear" ~count:150
    gen_ops (fun ops ->
      let linear, dataflow = both_modes (program_of_ops ops) in
      Footprint.subset linear dataflow)

let prop_dataflow_no_more_unresolved =
  QCheck2.Test.make
    ~name:"dataflow leaves no more unresolved sites than linear" ~count:150
    gen_ops (fun ops ->
      let linear, dataflow = both_modes (program_of_ops ops) in
      dataflow.Footprint.unresolved_sites <= linear.Footprint.unresolved_sites
      && dataflow.Footprint.syscall_sites = linear.Footprint.syscall_sites)

let () =
  Alcotest.run "dataflow"
    [ ( "lattice",
        [ Alcotest.test_case "value joins" `Quick test_join_values ] );
      ( "cfg",
        [ Alcotest.test_case "branch join" `Quick test_branch_join;
          Alcotest.test_case "loop invariant" `Quick
            test_loop_invariant_resolves;
          Alcotest.test_case "loop widening terminates" `Quick
            test_loop_widening_terminates;
          Alcotest.test_case "dead decoy block" `Quick test_jump_over_decoy;
          Alcotest.test_case "fuel budget" `Quick test_fuel_budget ] );
      ( "summaries",
        [ Alcotest.test_case "wrapper resolved at call site" `Quick
            test_wrapper_summary;
          Alcotest.test_case "two callers, two numbers" `Quick
            test_wrapper_two_callers;
          Alcotest.test_case "vop via syscall() helper" `Quick
            test_vop_via_syscall_helper ] );
      ( "precision",
        [ Alcotest.test_case "branch-skipped clobber (linear fails)" `Quick
            test_skip_clobber ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_dataflow_superset;
          QCheck_alcotest.to_alcotest prop_dataflow_no_more_unresolved ] ) ]
