(* Tests for the ELF64 writer/reader pair and the Figure 1 file
   classifier: parse(write(image)) must be the identity on every field
   the pipeline consumes, and malformed inputs must fail cleanly. *)

module Elf = Core.Elf
module Asm = Core.Asm
module P = Asm.Program

let sample_exe () =
  P.executable ~entry_fn:"_start" ~needed:[ "libc.so.6"; "libfoo.so.1" ]
    [ P.func "_start" [ P.Call_import "__libc_start_main"; P.Call_local "main" ];
      P.func "main"
        [ P.Use_string "/proc/cpuinfo"; P.Direct_syscall 1;
          P.Call_import "printf"; P.Vectored_syscall (Core.Apidb.Api.Ioctl, 0x5401) ];
      P.func ~global:false "helper" [ P.Direct_syscall 0 ] ]

let sample_lib () =
  P.shared_lib ~soname:"libbar.so.2" ~needed:[ "libc.so.6" ]
    [ P.func "bar_init" [ P.Call_import "malloc"; P.Direct_syscall 9 ];
      P.func "bar_work" [ P.Use_string "/dev/null" ] ]

let parse_ok bytes =
  match Elf.Reader.parse bytes with
  | Ok img -> img
  | Error e -> Alcotest.failf "parse error: %a" Elf.Reader.pp_error e

let test_roundtrip_exe () =
  let img = Asm.Builder.assemble (sample_exe ()) in
  let img2 = parse_ok (Elf.Writer.write img) in
  Alcotest.(check bool) "kind" true (img2.Elf.Image.kind = img.Elf.Image.kind);
  Alcotest.(check int) "entry" img.Elf.Image.entry img2.Elf.Image.entry;
  Alcotest.(check string) "text" img.Elf.Image.text img2.Elf.Image.text;
  Alcotest.(check int) "text addr" img.Elf.Image.text_addr img2.Elf.Image.text_addr;
  Alcotest.(check string) "rodata" img.Elf.Image.rodata img2.Elf.Image.rodata;
  Alcotest.(check (list string)) "imports" img.Elf.Image.imports img2.Elf.Image.imports;
  Alcotest.(check (list (pair string int)))
    "plt/got map" img.Elf.Image.plt_got img2.Elf.Image.plt_got;
  Alcotest.(check (list string)) "needed" img.Elf.Image.needed img2.Elf.Image.needed;
  Alcotest.(check (option string)) "interp" img.Elf.Image.interp img2.Elf.Image.interp;
  Alcotest.(check int) "symbol count"
    (List.length img.Elf.Image.symbols)
    (List.length img2.Elf.Image.symbols)

let test_roundtrip_lib () =
  let img = Asm.Builder.assemble (sample_lib ()) in
  let img2 = parse_ok (Elf.Writer.write img) in
  Alcotest.(check bool) "shared lib kind" true
    (img2.Elf.Image.kind = Elf.Image.Shared_lib);
  Alcotest.(check (option string)) "soname" (Some "libbar.so.2")
    img2.Elf.Image.soname;
  Alcotest.(check bool) "exports preserved" true
    (Option.is_some (Elf.Image.find_symbol img2 "bar_init"))

let test_static_exe () =
  let prog =
    P.executable ~interp:None ~entry_fn:"_start" ~needed:[]
      [ P.func "_start" [ P.Direct_syscall 60 ] ]
  in
  let img2 = parse_ok (Asm.Builder.assemble_elf prog) in
  Alcotest.(check bool) "static kind" true
    (img2.Elf.Image.kind = Elf.Image.Exec_static);
  Alcotest.(check (option string)) "no interp" None img2.Elf.Image.interp

let test_symbol_lookup () =
  let img = Asm.Builder.assemble (sample_exe ()) in
  let main = Option.get (Elf.Image.find_symbol img "main") in
  Alcotest.(check (option string))
    "symbol_at finds the covering function" (Some "main")
    (Elf.Image.symbol_at img (main.Elf.Image.sym_addr + 2)
     |> Option.map (fun s -> s.Elf.Image.sym_name));
  Alcotest.(check (option string))
    "text_offset maps vaddrs" (Some "main")
    (Option.map (fun _ -> "main")
       (Elf.Image.text_offset img main.Elf.Image.sym_addr))

let test_errors () =
  let err input expected =
    match Elf.Reader.parse input with
    | Ok _ -> Alcotest.failf "expected failure for %s" expected
    | Error _ -> ()
  in
  err "" "empty";
  err "\x7fELF" "truncated header";
  err (String.make 64 'x') "bad magic";
  (* 32-bit class rejected *)
  let bad = Bytes.of_string ("\x7fELF\x01" ^ String.make 59 '\x00') in
  err (Bytes.to_string bad) "elf32"

let test_corrupt_section_table () =
  let bytes = Asm.Builder.assemble_elf (sample_exe ()) in
  (* truncate mid-way through the section headers *)
  let cut = String.sub bytes 0 (String.length bytes - 40) in
  match Elf.Reader.parse cut with
  | Ok _ -> Alcotest.fail "expected malformed error"
  | Error _ -> ()

(* --- malformed-ELF regression corpus ----------------------------------

   Golden error kinds for targeted corruptions of a valid binary. Each
   case pins the taxonomy: if a hardened path regresses (say, cstring
   goes back to silently returning the un-terminated tail), the
   corruption parses "successfully" and the corresponding check
   fails. *)

(* tiny header-walking helpers over the known-valid writer output;
   test inputs are small, so int arithmetic cannot overflow *)
let rd_u16 s p = Char.code s.[p] lor (Char.code s.[p + 1] lsl 8)
let rd_u32 s p = rd_u16 s p lor (rd_u16 s (p + 2) lsl 16)
let rd_u64 s p = rd_u32 s p lor (rd_u32 s (p + 4) lsl 32)

let wr b p v n =
  for k = 0 to n - 1 do
    Bytes.set b (p + k) (Char.chr ((v lsr (8 * k)) land 0xFF))
  done

(* (name, header position, sh_offset, sh_size) of every section *)
let raw_sections bytes =
  let shoff = rd_u64 bytes 0x28
  and shnum = rd_u16 bytes 0x3C
  and shstrndx = rd_u16 bytes 0x3E in
  let strp = shoff + (shstrndx * 64) in
  let strtab =
    String.sub bytes (rd_u64 bytes (strp + 24)) (rd_u64 bytes (strp + 32))
  in
  List.init shnum (fun i ->
      let p = shoff + (i * 64) in
      let nameoff = rd_u32 bytes p in
      let name =
        match String.index_from_opt strtab nameoff '\x00' with
        | Some stop -> String.sub strtab nameoff (stop - nameoff)
        | None -> ""
      in
      (name, p, rd_u64 bytes (p + 24), rd_u64 bytes (p + 32)))

let find_section bytes name =
  match List.find_opt (fun (n, _, _, _) -> n = name) (raw_sections bytes) with
  | Some s -> s
  | None -> Alcotest.failf "sample binary has no %s section" name

let expect_kind what expected bytes =
  match Elf.Reader.parse bytes with
  | Ok _ ->
    Alcotest.failf "%s: expected a %s error but the input parsed" what
      (Elf.Reader.kind_name expected)
  | Error e ->
    Alcotest.(check string) what
      (Elf.Reader.kind_name expected)
      (Elf.Reader.kind_name (Elf.Reader.kind e))

let test_malformed_corpus () =
  let bytes = Asm.Builder.assemble_elf (sample_exe ()) in
  (* 1. header intact, but the claimed section table lies past a cut *)
  expect_kind "truncated section table" Elf.Reader.K_truncated
    (String.sub bytes 0 100);
  (* 2. e_shstrndx points past the section table *)
  let b = Bytes.of_string bytes in
  wr b 0x3E 0xFFFF 2;
  expect_kind "shstrndx out of range" Elf.Reader.K_bad_header
    (Bytes.to_string b);
  (* 3. section-name table with its NUL terminators stripped *)
  let shstrndx = rd_u16 bytes 0x3E in
  let shoff = rd_u64 bytes 0x28 in
  let strp = shoff + (shstrndx * 64) in
  let stroff = rd_u64 bytes (strp + 24)
  and strsize = rd_u64 bytes (strp + 32) in
  let b = Bytes.of_string bytes in
  for p = stroff to stroff + strsize - 1 do
    if Bytes.get b p = '\x00' then Bytes.set b p 'A'
  done;
  expect_kind "de-NUL-ed shstrtab" Elf.Reader.K_bad_strtab
    (Bytes.to_string b);
  (* 4. .text claims data past end of file *)
  let _, textp, _, _ = find_section bytes ".text" in
  let b = Bytes.of_string bytes in
  wr b (textp + 24) (String.length bytes * 2) 8;
  expect_kind "section data out of bounds" Elf.Reader.K_truncated
    (Bytes.to_string b);
  (* 5. relocation whose symbol index runs past .dynsym *)
  let _, _, reloff, _ = find_section bytes ".rela.plt" in
  let b = Bytes.of_string bytes in
  (* r_info of the first entry: symidx lives in the high dword *)
  wr b (reloff + 8) 0 4;
  wr b (reloff + 12) 0x7FFFFF 4;
  expect_kind "reloc symbol index past .dynsym" Elf.Reader.K_bad_reloc
    (Bytes.to_string b)

(* --- classifier (Figure 1) --------------------------------------------- *)

let classify_name s = Elf.Classify.name (Elf.Classify.classify s)

let test_classify_elf () =
  Alcotest.(check string) "dynamic exe" "ELF dynamic executable"
    (classify_name (Asm.Builder.assemble_elf (sample_exe ())));
  Alcotest.(check string) "shared lib" "ELF shared library"
    (classify_name (Asm.Builder.assemble_elf (sample_lib ())))

let test_classify_scripts () =
  let cases =
    [ ("#!/bin/sh\necho hi\n", "Shell (dash)");
      ("#!/bin/dash\n", "Shell (dash)");
      ("#!/bin/bash\n", "Shell (bash)");
      ("#!/usr/bin/python\n", "Python");
      ("#!/usr/bin/python2.7\n", "Python");
      ("#!/usr/bin/env python3\nprint(1)\n", "Python");
      ("#!/usr/bin/perl -w\n", "Perl");
      ("#!/usr/bin/ruby1.9\n", "Ruby");
      ("#!/usr/bin/awk -f\n", "awk");
      ("just some text", "data") ]
  in
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (classify_name input))
    cases

let prop_roundtrip_random_programs =
  let gen =
    let open QCheck2.Gen in
    let op =
      oneof
        [ map (fun n -> P.Direct_syscall (n mod 323)) nat;
          return (P.Call_import "printf");
          return (P.Call_import "read");
          map (fun s -> P.Use_string ("/proc/" ^ string_of_int s)) small_nat;
          map (fun n -> P.Padding (n mod 20)) nat;
          return (P.Vectored_syscall (Core.Apidb.Api.Fcntl, 1)) ]
    in
    let func i = map (fun ops -> P.func (Printf.sprintf "fn%d" i) ops)
        (list_size (int_range 1 8) op) in
    let* n = int_range 1 6 in
    let* funcs = flatten_l (List.init n func) in
    return
      (P.executable ~entry_fn:"fn0" ~needed:[ "libc.so.6" ] funcs)
  in
  QCheck2.Test.make ~name:"random programs round-trip through ELF" ~count:100
    gen (fun prog ->
      let img = Asm.Builder.assemble prog in
      match Elf.Reader.parse (Elf.Writer.write img) with
      | Ok img2 ->
        img2.Elf.Image.text = img.Elf.Image.text
        && img2.Elf.Image.rodata = img.Elf.Image.rodata
        && img2.Elf.Image.imports = img.Elf.Image.imports
        && img2.Elf.Image.entry = img.Elf.Image.entry
      | Error _ -> false)

(* The robustness contract at the trust boundary: [Reader.parse]
   returns [Ok] or [Error] on ANY input — mutated real binaries and
   raw noise alike — and never lets an exception escape. *)
let prop_parse_never_raises_mutations =
  let base = lazy (Asm.Builder.assemble_elf (sample_exe ())) in
  QCheck2.Test.make ~name:"Reader.parse never raises over mutations"
    ~count:500 QCheck2.Gen.int (fun seed ->
      let rng = Core.Distro.Rng.create seed in
      let bytes, _kinds = Core.Fuzz.Mutate.random rng (Lazy.force base) in
      match Elf.Reader.parse bytes with Ok _ | Error _ -> true)

let prop_parse_never_raises_noise =
  QCheck2.Test.make ~name:"Reader.parse never raises on raw noise"
    ~count:500
    QCheck2.Gen.(string_size (int_range 0 512))
    (fun s -> match Elf.Reader.parse s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "elf"
    [ ( "roundtrip",
        [ Alcotest.test_case "executable" `Quick test_roundtrip_exe;
          Alcotest.test_case "shared library" `Quick test_roundtrip_lib;
          Alcotest.test_case "static executable" `Quick test_static_exe;
          Alcotest.test_case "symbol lookup" `Quick test_symbol_lookup ] );
      ( "errors",
        [ Alcotest.test_case "malformed inputs" `Quick test_errors;
          Alcotest.test_case "corrupt sections" `Quick
            test_corrupt_section_table;
          Alcotest.test_case "malformed corpus golden kinds" `Quick
            test_malformed_corpus ] );
      ( "classify",
        [ Alcotest.test_case "elf kinds" `Quick test_classify_elf;
          Alcotest.test_case "shebangs" `Quick test_classify_scripts ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_roundtrip_random_programs;
          QCheck_alcotest.to_alcotest prop_parse_never_raises_mutations;
          QCheck_alcotest.to_alcotest prop_parse_never_raises_noise ] ) ]
