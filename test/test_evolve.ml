(* Tests for the living distribution: evolution determinism and
   Rng-split isolation, the incremental analysis cache (bit-identity
   with a from-scratch run plus the hit/miss counters), delta
   snapshots (round-trip, size, damage goldens) and the
   release-aware source_key. *)

module G = Core.Distro.Generator
module P = Core.Distro.Package
module Pipeline = Core.Db.Pipeline
module Snapshot = Core.Db.Snapshot
module Store = Core.Db.Store
module Stage = Core.Perf.Stage

let config = { G.default_config with n_packages = 60 }

(* worlds are deterministic, so build each release once and share *)
let r0 = lazy (G.evolve ~config ~release:0 ())
let r3 = lazy (G.evolve ~config ~release:3 ())

let file_digests (d : P.distribution) =
  List.concat_map
    (fun (pkg : P.t) ->
      List.map
        (fun (f : P.file) ->
          (pkg.P.name ^ "/" ^ f.P.path, Digest.string f.P.bytes))
        pkg.P.files)
    d.P.packages

(* --- evolution ---------------------------------------------------- *)

let test_release0_is_generate () =
  let evolved = Lazy.force r0 in
  let generated = G.generate ~config () in
  Alcotest.(check (list (pair string string)))
    "release 0 emits byte-for-byte what generate emits"
    (file_digests generated) (file_digests evolved)

let test_deterministic () =
  let a = Lazy.force r3 in
  let b = G.evolve ~config ~release:3 () in
  Alcotest.(check (list (pair string string)))
    "same seed + release -> identical bytes"
    (file_digests a) (file_digests b)

let test_release_recorded () =
  Alcotest.(check int) "release 0" 0 (Lazy.force r0).P.release;
  Alcotest.(check int) "release 3" 3 (Lazy.force r3).P.release

let test_churn_is_bounded () =
  (* Rng-split isolation: packages evolution never touched must be
     byte-identical across releases, and churn must touch something. *)
  let d0 = Lazy.force r0 and d3 = Lazy.force r3 in
  let tbl = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (file_digests d0);
  let same = ref 0 and diff = ref 0 and fresh = ref 0 in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some v0 -> if v = v0 then incr same else incr diff
      | None -> incr fresh)
    (file_digests d3);
  if !same = 0 then Alcotest.fail "no package survived three releases";
  if !diff + !fresh = 0 then
    Alcotest.fail "three releases of churn changed nothing";
  let total = !same + !diff + !fresh in
  if !diff + !fresh > total / 2 then
    Alcotest.failf
      "churn touched %d/%d files — the default rate should leave most \
       of the world byte-identical"
      (!diff + !fresh) total

(* --- incremental pipeline ----------------------------------------- *)

let test_incremental_bit_identical () =
  let cache = Pipeline.new_cache () in
  let pc = { Pipeline.default with shared_cache = Some cache } in
  let h0 = Stage.counter "incremental:hits" in
  let m0 = Stage.counter "incremental:misses" in
  ignore (Pipeline.run ~config:pc (Lazy.force r0));
  let warm = Pipeline.cache_size cache in
  if warm = 0 then Alcotest.fail "release 0 populated nothing";
  let m_after_r0 = Stage.counter "incremental:misses" in
  Alcotest.(check int) "cold run: every payload is a miss" warm
    (m_after_r0 - m0);
  let inc = Pipeline.run ~config:pc (Lazy.force r3) in
  let scratch = Pipeline.run (Lazy.force r3) in
  Alcotest.(check string)
    "incremental run is bit-identical to from-scratch"
    (Snapshot.to_string (Snapshot.of_analyzed scratch))
    (Snapshot.to_string (Snapshot.of_analyzed inc));
  let hits = Stage.counter "incremental:hits" - h0 in
  let misses = Stage.counter "incremental:misses" - m_after_r0 in
  if hits = 0 then Alcotest.fail "warm run reused nothing";
  if misses >= hits then
    Alcotest.failf
      "warm run missed more than it hit (%d misses vs %d hits) — the \
       cache is not being reused across releases"
      misses hits

(* --- delta snapshots ---------------------------------------------- *)

let snap_of release =
  Snapshot.of_analyzed
    (Pipeline.run (Lazy.force (if release = 0 then r0 else r3)))

let base = lazy (snap_of 0)
let cur = lazy (snap_of 3)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Snapshot.pp_error e

let test_delta_roundtrip () =
  let base = Lazy.force base and cur = Lazy.force cur in
  let delta = Snapshot.to_delta_string ~base cur in
  let applied = ok_exn "apply" (Snapshot.apply_delta ~base delta) in
  Alcotest.(check string) "applying the delta reproduces the snapshot"
    (Snapshot.to_string cur)
    (Snapshot.to_string applied)

let test_delta_is_small () =
  let base = Lazy.force base and cur = Lazy.force cur in
  let delta = String.length (Snapshot.to_delta_string ~base cur) in
  let full = String.length (Snapshot.to_string cur) in
  if delta * 10 > full then
    Alcotest.failf
      "delta is %d bytes against a %d-byte full snapshot — changed-rows \
       encoding should be an order of magnitude smaller"
      delta full

let check_delta_error name expected ~base bytes =
  match Snapshot.apply_delta ~base bytes with
  | Ok _ -> Alcotest.failf "%s: apply unexpectedly succeeded" name
  | Error e ->
    Alcotest.(check string) name expected (Snapshot.kind_name e)

let test_delta_damage_goldens () =
  let base = Lazy.force base and cur = Lazy.force cur in
  let delta = Snapshot.to_delta_string ~base cur in
  let n = String.length delta in
  (* a delta fed to the plain decoder announces its base *)
  (match Snapshot.of_string delta with
   | Ok _ -> Alcotest.fail "a delta decoded standalone"
   | Error e ->
     Alcotest.(check string) "standalone decode" "needs-base"
       (Snapshot.kind_name e));
  (* a full snapshot is not a delta *)
  check_delta_error "full snapshot as delta" "unsupported-version" ~base
    (Snapshot.to_string cur);
  (* applying against the wrong base world *)
  check_delta_error "wrong base" "base-mismatch" ~base:cur delta;
  (* damage: truncations and a payload flip (caught by the digest) *)
  check_delta_error "truncated header" "truncated" ~base
    (String.sub delta 0 20);
  check_delta_error "truncated payload" "truncated" ~base
    (String.sub delta 0 (n - 1));
  let flipped = Bytes.of_string delta in
  let i = 36 + ((n - 36) / 2) in
  Bytes.set flipped i
    (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  check_delta_error "flipped payload byte" "digest-mismatch" ~base
    (Bytes.to_string flipped);
  check_delta_error "trailing garbage" "corrupt" ~base (delta ^ "x")

let test_delta_never_raises () =
  (* every truncation point and a flip at every offset must come back
     as a structured error, never an exception *)
  let base = Lazy.force base in
  let delta = Snapshot.to_delta_string ~base (Lazy.force cur) in
  let n = String.length delta in
  for keep = 0 to n - 1 do
    match Snapshot.apply_delta ~base (String.sub delta 0 keep) with
    | Ok _ -> Alcotest.failf "truncation to %d applied" keep
    | Error _ -> ()
  done;
  for i = 0 to n - 1 do
    let b = Bytes.of_string delta in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    ignore (Snapshot.apply_delta ~base (Bytes.to_string b))
  done

let test_delta_file_roundtrip () =
  let base = Lazy.force base and cur = Lazy.force cur in
  let path = Filename.temp_file "lapis-delta" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Snapshot.save_delta path ~base cur with
       | Ok () -> ()
       | Error e -> Alcotest.failf "save_delta: %a" Snapshot.pp_error e);
      let loaded = ok_exn "load_delta" (Snapshot.load_delta path ~base) in
      Alcotest.(check string) "file round-trip"
        (Snapshot.to_string cur)
        (Snapshot.to_string loaded))

(* --- source identity ---------------------------------------------- *)

let test_source_key_release () =
  let k0 = Snapshot.source_key ~seed:1 ~n_packages:2 ~total_installs:3 () in
  let k0' =
    Snapshot.source_key ~release:0 ~seed:1 ~n_packages:2 ~total_installs:3 ()
  in
  let k1 =
    Snapshot.source_key ~release:1 ~seed:1 ~n_packages:2 ~total_installs:3 ()
  in
  let k2 =
    Snapshot.source_key ~release:2 ~seed:1 ~n_packages:2 ~total_installs:3 ()
  in
  Alcotest.(check string) "release 0 is the default spelling" k0 k0';
  if k1 = k0 then
    Alcotest.fail "release 1 collides with its release-0 ancestor";
  if k2 = k1 then Alcotest.fail "two releases share a source key"

let test_matches_release () =
  let cur = Lazy.force cur in
  Alcotest.(check bool) "matches with its own release" true
    (Snapshot.matches ~release:3 cur config);
  Alcotest.(check bool) "an evolved world is not its ancestor" false
    (Snapshot.matches cur config);
  Alcotest.(check bool) "base matches the release-0 default" true
    (Snapshot.matches (Lazy.force base) config)

let () =
  Alcotest.run "evolve"
    [ ( "evolution",
        [ Alcotest.test_case "release 0 == generate" `Quick
            test_release0_is_generate;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "release recorded" `Quick test_release_recorded;
          Alcotest.test_case "churn bounded" `Quick test_churn_is_bounded ] );
      ( "incremental",
        [ Alcotest.test_case "bit-identical + counters" `Quick
            test_incremental_bit_identical ] );
      ( "delta",
        [ Alcotest.test_case "round-trip" `Quick test_delta_roundtrip;
          Alcotest.test_case "small" `Quick test_delta_is_small;
          Alcotest.test_case "damage goldens" `Quick
            test_delta_damage_goldens;
          Alcotest.test_case "never raises" `Quick test_delta_never_raises;
          Alcotest.test_case "file round-trip" `Quick
            test_delta_file_roundtrip ] );
      ( "identity",
        [ Alcotest.test_case "source_key release" `Quick
            test_source_key_release;
          Alcotest.test_case "matches release" `Quick test_matches_release ]
      )
    ]
