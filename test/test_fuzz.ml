(* Tests for the mutational fuzz harness: campaigns are deterministic
   (replayable from the seed), never crash, account for every case,
   and the end-to-end pipeline quarantines corrupted package files
   instead of dying. *)

module H = Core.Fuzz.Harness
module M = Core.Fuzz.Mutate
module Rng = Core.Distro.Rng

let small_config =
  { H.default_config with H.cases = 400; base_packages = 8; seed = 99 }

let total = List.fold_left (fun n (_, v) -> n + v) 0

let test_campaign_contract () =
  let r = H.run ~config:small_config () in
  Alcotest.(check int) "zero uncaught crashes" 0 (List.length r.H.r_crashes);
  Alcotest.(check int) "every case is ok or rejected" r.H.r_cases
    (r.H.r_ok + total r.H.r_rejected);
  Alcotest.(check bool) "mutations do reject some inputs" true
    (r.H.r_rejected <> []);
  Alcotest.(check bool) "some mutants still parse" true (r.H.r_ok > 0);
  (* every reject kind is from the structured taxonomy *)
  let known =
    List.map Core.Elf.Reader.kind_name Core.Elf.Reader.all_kinds
  in
  List.iter
    (fun (k, n) ->
      Alcotest.(check bool) ("taxonomy kind: " ^ k) true (List.mem k known);
      Alcotest.(check bool) ("positive count: " ^ k) true (n > 0))
    r.H.r_rejected

let test_campaign_deterministic () =
  (* same seed, same campaign: the printed seed is enough to replay *)
  let r1 = H.run ~config:small_config () in
  let r2 = H.run ~config:small_config () in
  Alcotest.(check int) "same survivors" r1.H.r_ok r2.H.r_ok;
  Alcotest.(check (list (pair string int)))
    "same rejects per kind" r1.H.r_rejected r2.H.r_rejected;
  Alcotest.(check (list (pair string int)))
    "same mutation mix" r1.H.r_mutations r2.H.r_mutations;
  Alcotest.(check (list (pair string int)))
    "same fuel spends" r1.H.r_fuel r2.H.r_fuel

let test_mutations_deterministic () =
  let base = String.init 4096 (fun i -> Char.chr (i land 0xFF)) in
  List.iter
    (fun kind ->
      let a = M.apply (Rng.create 5) kind base in
      let b = M.apply (Rng.create 5) kind base in
      Alcotest.(check string) (M.name kind ^ " replays") a b)
    M.all;
  (* these two are structurally guaranteed to change any large input:
     a flip inverts a bit, and no jump pattern occurs in the ramp *)
  List.iter
    (fun kind ->
      Alcotest.(check bool) (M.name kind ^ " changes the input") false
        (M.apply (Rng.create 6) kind base = base))
    [ M.Bit_flip; M.Text_self_jump ]

let test_pipeline_quarantine () =
  let s = H.pipeline_smoke ~seed:5 ~packages:15 ~victims:10 () in
  Alcotest.(check bool) "some package files were corrupted" true
    (s.H.s_mutated > 0);
  Alcotest.(check bool) "some corruptions are unconditionally fatal" true
    (s.H.s_forced > 0);
  let q = Core.Db.Pipeline.quarantined s.H.s_analyzed in
  Alcotest.(check bool)
    (Printf.sprintf "quarantine (%d) covers the forced corruptions (%d)" q
       s.H.s_forced)
    true (q >= s.H.s_forced);
  (* the run still completes: every package has its store row *)
  Alcotest.(check int) "all packages aggregated"
    (Core.Distro.Package.n_packages s.H.s_analyzed.Core.Db.Pipeline.dist)
    s.H.s_analyzed.Core.Db.Pipeline.store.Core.Db.Store.n_packages;
  (* the reject table names only known kinds *)
  let known =
    "analysis-crash"
    :: List.map Core.Elf.Reader.kind_name Core.Elf.Reader.all_kinds
  in
  List.iter
    (fun (k, n) ->
      Alcotest.(check bool) ("known reject kind: " ^ k) true
        (List.mem k known);
      Alcotest.(check bool) ("positive reject count: " ^ k) true (n > 0))
    s.H.s_analyzed.Core.Db.Pipeline.world.Core.Analysis.Resolve.stats
      .Core.Analysis.Resolve.rejects

let () =
  Alcotest.run "fuzz"
    [ ( "harness",
        [ Alcotest.test_case "campaign contract" `Quick
            test_campaign_contract;
          Alcotest.test_case "campaign determinism" `Quick
            test_campaign_deterministic;
          Alcotest.test_case "mutation determinism" `Quick
            test_mutations_deterministic ] );
      ( "pipeline",
        [ Alcotest.test_case "quarantine containment" `Quick
            test_pipeline_quarantine ] ) ]
