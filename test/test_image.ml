(* Tests for format-4 index images: a built index serialized flat,
   loaded back either by copy ([of_image]) or by mapping the file
   ([load_image]), must answer every query bit-identically to the
   index it came from — and reject every kind of damage with a
   structured error instead of an exception. *)

module Api = Core.Apidb.Api
module Syscall_table = Core.Apidb.Syscall_table
module Query = Core.Query.Engine
module Snapshot = Core.Db.Snapshot
module Rng = Core.Distro.Rng

let env = lazy (Core.Study.Env.create_small ())
let index () = (Lazy.force env).Core.Study.Env.index

let image = lazy (
  match Query.to_image_string ~seed:42 ~source_key:"test" (index ()) with
  | Ok s -> s
  | Error e -> Alcotest.failf "to_image_string: %a" Snapshot.pp_error e)

let of_image_exn ?verify s =
  match Query.of_image ?verify s with
  | Ok t -> t
  | Error e -> Alcotest.failf "of_image: %a" Snapshot.pp_error e

let check_exact name a b =
  if not (Float.equal a b) then
    Alcotest.failf "%s: built %.17g vs loaded %.17g" name a b

let all_nrs =
  Array.to_list Syscall_table.all
  |> List.map (fun (e : Syscall_table.entry) -> e.Syscall_table.nr)

let random_subsets ~n ~max_size =
  let rng = Rng.create 777 in
  List.init n (fun _ ->
      let k = 1 + Rng.int rng max_size in
      Rng.sample rng k all_nrs)

let phases = [ Query.All; Query.Init; Query.Serving ]

(* Every point metric, every eval path, every phase: loaded values
   must equal the built index's bit for bit (sharded included — the
   shard ranges and per-range fold orders are identical). *)
let check_agreement built loaded =
  Alcotest.(check int) "n_packages" (Query.n_packages built)
    (Query.n_packages loaded);
  Alcotest.(check int) "n_apis" (Query.n_apis built) (Query.n_apis loaded);
  Alcotest.(check int) "n_components" (Query.n_components built)
    (Query.n_components loaded);
  Alcotest.(check int) "n_binaries" (Query.n_binaries built)
    (Query.n_binaries loaded);
  Alcotest.(check int) "total_installs" (Query.total_installs built)
    (Query.total_installs loaded);
  Alcotest.(check (list int)) "ranking" (Query.ranking built)
    (Query.ranking loaded);
  List.iter
    (fun phase ->
      let p = Query.phase_to_string phase in
      List.iter
        (fun nr ->
          let api = Api.Syscall nr in
          check_exact
            (Printf.sprintf "importance %d %s" nr p)
            (Query.importance ~phase built api)
            (Query.importance ~phase loaded api);
          check_exact
            (Printf.sprintf "survival %d %s" nr p)
            (Query.survival ~phase built api)
            (Query.survival ~phase loaded api))
        all_nrs;
      List.iteri
        (fun i nrs ->
          check_exact
            (Printf.sprintf "subset %d %s" i p)
            (Query.eval_syscalls ~phase built nrs)
            (Query.eval_syscalls ~phase loaded nrs);
          check_exact
            (Printf.sprintf "sharded subset %d %s" i p)
            (Query.eval_syscalls_sharded ~shards:3 ~phase built nrs)
            (Query.eval_syscalls_sharded ~shards:3 ~phase loaded nrs))
        (random_subsets ~n:40 ~max_size:150))
    phases;
  List.iter
    (fun nr ->
      let api = Api.Syscall nr in
      check_exact
        (Printf.sprintf "unweighted %d" nr)
        (Query.unweighted built api) (Query.unweighted loaded api);
      check_exact
        (Printf.sprintf "unweighted_elf %d" nr)
        (Query.unweighted_elf built api)
        (Query.unweighted_elf loaded api))
    all_nrs;
  let pred = function Api.Syscall nr -> nr < 100 | _ -> true in
  check_exact "eval_pred"
    (Query.eval_pred built ~supported:pred)
    (Query.eval_pred loaded ~supported:pred);
  (* dependents of the most important syscall *)
  let top = Api.Syscall (List.hd (Query.ranking built)) in
  Alcotest.(check (list (pair string (float 0.0))))
    "dependents_ranked"
    (Query.dependents_ranked ~limit:50 built top)
    (Query.dependents_ranked ~limit:50 loaded top)

let check_bins_equal built loaded =
  let get t =
    match Query.bins t with
    | Ok rows -> rows
    | Error e -> Alcotest.failf "bins: %a" Snapshot.pp_error e
  in
  let a = get built and b = get loaded in
  Alcotest.(check int) "bin rows" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (x : Query.bin_sets) ->
      let y = b.(i) in
      Alcotest.(check string) "digest"
        (Digest.to_hex x.Query.bs_digest)
        (Digest.to_hex y.Query.bs_digest);
      List.iter
        (fun (what, s1, s2) ->
          if not (Api.Set.equal s1 s2) then
            Alcotest.failf "bin %d: %s sets differ" i what)
        [
          ("all", x.Query.bs_all, y.Query.bs_all);
          ("init", x.Query.bs_init, y.Query.bs_init);
          ("serving", x.Query.bs_serving, y.Query.bs_serving);
        ])
    a

let test_round_trip_memory () =
  let built = index () in
  let loaded = of_image_exn (Lazy.force image) in
  Alcotest.(check bool) "not mapped source" false (Query.is_mapped built);
  check_agreement built loaded;
  check_bins_equal built loaded;
  (* digest lookup *)
  match Query.bins built with
  | Error e -> Alcotest.failf "bins: %a" Snapshot.pp_error e
  | Ok rows ->
    Alcotest.(check bool) "has bins" true (Array.length rows > 0);
    let d = rows.(0).Query.bs_digest in
    (match Query.find_bin loaded d with
     | Ok (Some b) ->
       if not (Api.Set.equal b.Query.bs_all rows.(0).Query.bs_all) then
         Alcotest.fail "find_bin: wrong row"
     | Ok None -> Alcotest.fail "find_bin: digest absent"
     | Error e -> Alcotest.failf "find_bin: %a" Snapshot.pp_error e);
    (match Query.find_bin loaded (Digest.string "no such binary") with
     | Ok None -> ()
     | Ok (Some _) -> Alcotest.fail "find_bin: phantom row"
     | Error e -> Alcotest.failf "find_bin: %a" Snapshot.pp_error e)

let test_round_trip_mapped () =
  let built = index () in
  let path = Filename.temp_file "lapis_image" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Query.save_image ~seed:42 ~source_key:"test" path built with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save_image: %a" Snapshot.pp_error e);
  let loaded =
    match Query.load_image path with
    | Ok t -> t
    | Error e -> Alcotest.failf "load_image: %a" Snapshot.pp_error e
  in
  Alcotest.(check bool) "mapped" true (Query.is_mapped loaded);
  check_agreement built loaded;
  check_bins_equal built loaded;
  (* a second mapping of the same file agrees too *)
  let again =
    match Query.load_image ~verify:false path with
    | Ok t -> t
    | Error e -> Alcotest.failf "load_image(no verify): %a" Snapshot.pp_error e
  in
  check_exact "replica agreement"
    (Query.eval_syscalls loaded all_nrs)
    (Query.eval_syscalls again all_nrs)

let test_file_version_routes () =
  let path = Filename.temp_file "lapis_image" ".idx" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  (match Query.save_image path (index ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save_image: %a" Snapshot.pp_error e);
  (match Snapshot.file_version path with
  | Ok v -> Alcotest.(check int) "image version" Query.image_version v
  | Error e -> Alcotest.failf "file_version: %a" Snapshot.pp_error e);
  (* the row-snapshot decoder must refuse it as a version it cannot
     rebuild rows from, not misparse it *)
  match Snapshot.of_string (Lazy.force image) with
  | Error (Snapshot.Unsupported_version 4) -> ()
  | Error e -> Alcotest.failf "of_string: wrong error %a" Snapshot.pp_error e
  | Ok _ -> Alcotest.fail "of_string: decoded an index image as rows"

(* --- damage: every mutation yields Error, never an exception ------- *)

let expect_error what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: accepted damaged image" what

let test_truncations () =
  let img = Lazy.force image in
  let n = String.length img in
  (* every prefix in the header, then coarse cuts through the body *)
  let cuts =
    List.init 48 (fun i -> i)
    @ List.init 16 (fun i -> (i + 1) * (n / 17))
    @ [ n - 1 ]
  in
  List.iter
    (fun k ->
      if k < n then
        expect_error
          (Printf.sprintf "truncated to %d" k)
          (Query.of_image (String.sub img 0 k)))
    cuts

let test_header_damage () =
  let img = Lazy.force image in
  let flip k =
    let b = Bytes.of_string img in
    Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0xff));
    Bytes.to_string b
  in
  (match Query.of_image (flip 0) with
  | Error Snapshot.Not_snapshot -> ()
  | Error e -> Alcotest.failf "magic: wrong error %a" Snapshot.pp_error e
  | Ok _ -> Alcotest.fail "magic: accepted");
  (match Query.of_image (flip 8) with
  | Error (Snapshot.Unsupported_version _) -> ()
  | Error e -> Alcotest.failf "version: wrong error %a" Snapshot.pp_error e
  | Ok _ -> Alcotest.fail "version: accepted");
  (* a payload flip under verification is a digest mismatch *)
  (match Query.of_image (flip (String.length img - 3)) with
  | Error Snapshot.Digest_mismatch -> ()
  | Error e -> Alcotest.failf "payload flip: wrong error %a" Snapshot.pp_error e
  | Ok _ -> Alcotest.fail "payload flip: accepted");
  (* trailing junk *)
  expect_error "trailing junk" (Query.of_image (img ^ "junk"));
  (* unrelated bytes *)
  expect_error "junk" (Query.of_image "not an image at all")

let test_section_table_damage () =
  let img = Lazy.force image in
  (* With verification off, structural validation must still catch a
     corrupted section table: misaligned and out-of-bounds offsets. *)
  let set_word file_off v =
    let b = Bytes.of_string img in
    Bytes.set_int64_le b file_off (Int64.of_int v);
    Bytes.to_string b
  in
  (* first section entry: id at payload word 2, offset at word 3 *)
  let off_pos = 40 + (8 * 3) in
  let orig_off = Int64.to_int (String.get_int64_le img off_pos) in
  (match Query.of_image ~verify:false (set_word off_pos (orig_off + 4)) with
  | Error (Snapshot.Corrupt _) -> ()
  | Error e -> Alcotest.failf "unaligned: wrong error %a" Snapshot.pp_error e
  | Ok _ -> Alcotest.fail "unaligned offset: accepted");
  (match Query.of_image ~verify:false (set_word off_pos (1 lsl 40)) with
  | Error (Snapshot.Truncated _) -> ()
  | Error e -> Alcotest.failf "oob: wrong error %a" Snapshot.pp_error e
  | Ok _ -> Alcotest.fail "out-of-bounds offset: accepted");
  (* section count word *)
  expect_error "huge section count"
    (Query.of_image ~verify:false (set_word 48 1_000_000))

let test_bins_damage () =
  let img = Lazy.force image in
  (* find the bins section (id 10) in the table and splat its first
     bytes with 0xFF: the pool count varint becomes astronomically
     large, which the lazy decode must reject *)
  let word k = Int64.to_int (String.get_int64_le img (40 + (8 * k))) in
  let n_sections = word 1 in
  let boff = ref (-1) in
  for i = 0 to n_sections - 1 do
    if word (2 + (3 * i)) = 10 then boff := word (2 + (3 * i) + 1)
  done;
  if !boff < 0 then Alcotest.fail "no bins section in image";
  let b = Bytes.of_string img in
  for k = 0 to 7 do
    Bytes.set b (40 + !boff + k) '\xff'
  done;
  let t = of_image_exn ~verify:false (Bytes.to_string b) in
  (* queries still work — only the bins decode is poisoned *)
  ignore (Query.eval_syscalls t all_nrs);
  match Query.bins t with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bins: decoded splatted section"

(* --- range slices --------------------------------------------------

   The slice contract ([to_image_string ~range]): partial sweeps over
   in-slice ranges are bit-identical to the full image, point metrics
   stay whole-world exact, and dependents list in-slice packages only
   — so the per-slice lists, merged and re-sorted with the ranked
   comparator, reproduce the full listing. *)

let slice_exn range =
  match
    Query.to_image_string ~seed:42 ~source_key:"test" ~range (index ())
  with
  | Ok s -> of_image_exn s
  | Error e -> Alcotest.failf "to_image_string ~range: %a" Snapshot.pp_error e

let check_partial_exact name full sliced ~lo ~hi =
  List.iter
    (fun phase ->
      let p = Query.phase_to_string phase in
      List.iteri
        (fun i nrs ->
          let num_f, den_f =
            Query.eval_syscalls_partial ~phase full nrs ~lo ~hi
          in
          let num_s, den_s =
            Query.eval_syscalls_partial ~phase sliced nrs ~lo ~hi
          in
          check_exact (Printf.sprintf "%s num %d %s" name i p) num_f num_s;
          check_exact (Printf.sprintf "%s den %d %s" name i p) den_f den_s)
        (random_subsets ~n:12 ~max_size:100))
    phases

let test_slices_example () =
  let full = index () in
  let n = Query.n_packages full in
  let ranges = Query.shard_ranges n 3 in
  let slices = List.map (fun r -> (r, slice_exn r)) ranges in
  List.iter
    (fun ((lo, hi), sliced) ->
      Alcotest.(check bool) "is_sliced" true (Query.is_sliced sliced);
      Alcotest.(check int) "slice_lo" lo (Query.slice_lo sliced);
      Alcotest.(check int) "slice_hi" hi (Query.slice_hi sliced);
      (* point metrics are whole-world exact on a slice *)
      Alcotest.(check (list int))
        "ranking" (Query.ranking full) (Query.ranking sliced);
      List.iter
        (fun phase ->
          let p = Query.phase_to_string phase in
          List.iter
            (fun nr ->
              let api = Api.Syscall nr in
              check_exact
                (Printf.sprintf "importance %d %s" nr p)
                (Query.importance ~phase full api)
                (Query.importance ~phase sliced api);
              check_exact
                (Printf.sprintf "survival %d %s" nr p)
                (Query.survival ~phase full api)
                (Query.survival ~phase sliced api))
            all_nrs)
        phases;
      (* the whole slice, a strict sub-range, and the empty range *)
      check_partial_exact "whole slice" full sliced ~lo ~hi;
      if hi - lo > 2 then
        check_partial_exact "sub-range" full sliced ~lo:(lo + 1) ~hi:(hi - 1);
      check_partial_exact "empty range" full sliced ~lo ~hi:lo)
    slices;
  (* dependents: per-slice listings merge into the full listing *)
  let top = Api.Syscall (List.hd (Query.ranking full)) in
  let merged =
    List.concat_map (fun (_, s) -> Query.dependents_ranked s top) slices
    |> List.sort (fun (n1, p1) (n2, p2) ->
           match Float.compare p2 p1 with
           | 0 -> String.compare n1 n2
           | c -> c)
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "dependents merge" (Query.dependents_ranked full top) merged

let test_slice_full_width () =
  (* the full-width "slice" covers everything: not a proper slice, and
     every query — bins included — agrees with the built index *)
  let full = index () in
  let sliced = slice_exn (0, Query.n_packages full) in
  Alcotest.(check bool) "not sliced" false (Query.is_sliced sliced);
  check_agreement full sliced;
  check_bins_equal full sliced

let test_qcheck_slice_partials () =
  let full = index () in
  let n = Query.n_packages full in
  let gen =
    QCheck2.Gen.(
      let* lo = int_bound n in
      let* hi = int_range lo n in
      let* a = int_range lo hi in
      let* b = int_range a hi in
      let* phase = oneofl [ Query.All; Query.Init; Query.Serving ] in
      let* nrs = list_size (int_bound 80) (int_bound 450) in
      return ((lo, hi), (a, b), phase, nrs))
  in
  let cell =
    QCheck2.Test.make ~count:60 ~name:"slice partials bit-identical" gen
      (fun ((lo, hi), (a, b), phase, nrs) ->
        let sliced = slice_exn (lo, hi) in
        let num_f, den_f =
          Query.eval_syscalls_partial ~phase full nrs ~lo:a ~hi:b
        in
        let num_s, den_s =
          Query.eval_syscalls_partial ~phase sliced nrs ~lo:a ~hi:b
        in
        Float.equal num_f num_s && Float.equal den_f den_s)
  in
  QCheck_alcotest.to_alcotest cell

let test_qcheck_heap_map_agree () =
  let built = index () in
  let loaded = of_image_exn (Lazy.force image) in
  let gen =
    QCheck2.Gen.(
      pair
        (oneofl [ Query.All; Query.Init; Query.Serving ])
        (list_size (int_bound 120) (int_bound 450)))
  in
  let cell =
    QCheck2.Test.make ~count:300 ~name:"heap vs map eval_syscalls" gen
      (fun (phase, nrs) ->
        Float.equal
          (Query.eval_syscalls ~phase built nrs)
          (Query.eval_syscalls ~phase loaded nrs))
  in
  QCheck_alcotest.to_alcotest cell

let () =
  Alcotest.run "image"
    [
      ( "round-trip",
        [
          Alcotest.test_case "memory" `Quick test_round_trip_memory;
          Alcotest.test_case "mapped file" `Quick test_round_trip_mapped;
          Alcotest.test_case "version routing" `Quick test_file_version_routes;
        ] );
      ( "damage",
        [
          Alcotest.test_case "truncations" `Quick test_truncations;
          Alcotest.test_case "header" `Quick test_header_damage;
          Alcotest.test_case "section table" `Quick test_section_table_damage;
          Alcotest.test_case "bins section" `Quick test_bins_damage;
        ] );
      ( "slices",
        [
          Alcotest.test_case "example ranges" `Quick test_slices_example;
          Alcotest.test_case "full width" `Quick test_slice_full_width;
        ] );
      ( "qcheck",
        [ test_qcheck_heap_map_agree (); test_qcheck_slice_partials () ] );
    ]
