(* Tests for the metrics: the Appendix A closed forms on hand-built
   stores, property tests of their structure, and Monte-Carlo
   validation of the independence assumption. *)

module Api = Core.Apidb.Api
module Store = Core.Db.Store
module Importance = Core.Metrics.Importance
module Completeness = Core.Metrics.Completeness

let apiset lst = List.fold_left (fun s a -> Api.Set.add a s) Api.Set.empty lst

let pkg ?(deps = []) ?(essential = false) name prob apis =
  {
    Store.pr_name = name;
    pr_installs = int_of_float (prob *. 1_000_000.);
    pr_prob = prob;
    pr_deps = deps;
    pr_essential = essential;
    pr_apis = apiset apis;
    pr_apis_elf = apiset apis;
    pr_init = apiset apis;
    pr_serving = apiset apis;
  }

let toy_store () =
  Store.build ~total_installs:1_000_000
    ~bins:[]
    ~packages:
      [ pkg "a" 0.5 [ Api.Syscall 0; Api.Syscall 1 ];
        pkg "b" 0.5 [ Api.Syscall 1; Api.Syscall 2 ];
        pkg "c" 0.1 [ Api.Syscall 3 ];
        pkg "d" 0.9 [ Api.Syscall 0 ] ~deps:[ "c" ] ]

(* --- importance --------------------------------------------------------- *)

let test_importance_formula () =
  let s = toy_store () in
  (* syscall 1 used by a and b: 1 - (1-0.5)(1-0.5) = 0.75 *)
  Alcotest.(check (float 1e-9)) "two dependents" 0.75
    (Importance.importance s (Api.Syscall 1));
  (* syscall 3 used by c alone: 0.1 *)
  Alcotest.(check (float 1e-9)) "one dependent" 0.1
    (Importance.importance s (Api.Syscall 3));
  (* unused API: 0 *)
  Alcotest.(check (float 1e-9)) "unused" 0.0
    (Importance.importance s (Api.Syscall 99))

let test_unweighted () =
  let s = toy_store () in
  Alcotest.(check (float 1e-9)) "half the packages use syscall 0" 0.5
    (Importance.unweighted s (Api.Syscall 0));
  Alcotest.(check (float 1e-9)) "a quarter uses syscall 3" 0.25
    (Importance.unweighted s (Api.Syscall 3))

let test_ranking_order () =
  let s = toy_store () in
  let ranking = Importance.rank_syscalls s in
  let pos nr =
    let rec go i = function
      | [] -> max_int
      | x :: rest -> if x = nr then i else go (i + 1) rest
    in
    go 0 ranking
  in
  (* syscall 0 (imp 0.95) before 1 (0.75) before 2 (0.5) before 3 (0.1) *)
  Alcotest.(check bool) "importance ordering" true
    (pos 0 < pos 1 && pos 1 < pos 2 && pos 2 < pos 3)

(* --- completeness -------------------------------------------------------- *)

let test_completeness_basic () =
  let s = toy_store () in
  let total = 0.5 +. 0.5 +. 0.1 +. 0.9 in
  (* supporting syscalls {0,1}: packages a (0.5) supported; d's own
     footprint {0} is fine but its dependency c needs syscall 3 *)
  Alcotest.(check (float 1e-9)) "dependency rule applies" (0.5 /. total)
    (Completeness.of_syscall_set s [ 0; 1 ]);
  (* adding syscall 3 unlocks c and therefore d *)
  Alcotest.(check (float 1e-9)) "dependency unlocked"
    ((0.5 +. 0.1 +. 0.9) /. total)
    (Completeness.of_syscall_set s [ 0; 1; 3 ]);
  Alcotest.(check (float 1e-9)) "full support" 1.0
    (Completeness.of_syscall_set s [ 0; 1; 2; 3 ])

let test_completeness_scope () =
  let s =
    Store.build ~total_installs:100 ~bins:[]
      ~packages:
        [ pkg "x" 0.5 [ Api.Syscall 0; Api.Libc_sym "printf" ] ]
  in
  (* syscalls-only scope ignores the libc symbol *)
  Alcotest.(check (float 1e-9)) "syscalls-only scope" 1.0
    (Completeness.weighted_completeness ~scope:Completeness.Syscalls_only s
       ~supported:(fun api -> api = Api.Syscall 0));
  Alcotest.(check (float 1e-9)) "all-APIs scope" 0.0
    (Completeness.weighted_completeness ~scope:Completeness.All_apis s
       ~supported:(fun api -> api = Api.Syscall 0))

let test_curve () =
  let s = toy_store () in
  let ranking = Importance.rank_syscalls s in
  let curve = Completeness.curve s ~ranking in
  (* monotone non-decreasing, ends at 1 *)
  let rec monotone prev = function
    | [] -> true
    | (_, c) :: rest -> c >= prev -. 1e-12 && monotone c rest
  in
  Alcotest.(check bool) "monotone" true (monotone 0.0 curve);
  let _, last = List.nth curve (List.length curve - 1) in
  Alcotest.(check (float 1e-9)) "reaches 100%" 1.0 last;
  (* curve agrees with the direct computation at every prefix *)
  List.iteri
    (fun i (n, c) ->
      Alcotest.(check int) "index" (i + 1) n;
      let prefix = List.filteri (fun j _ -> j <= i) ranking in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "agrees at N=%d" n)
        (Completeness.of_syscall_set s prefix)
        c)
    curve

let test_crossing () =
  let curve = [ (1, 0.0); (2, 0.4); (3, 0.9); (4, 1.0) ] in
  Alcotest.(check (option int)) "50% crossing" (Some 3)
    (Completeness.crossing curve 0.5);
  Alcotest.(check (option int)) "unreachable target" None
    (Completeness.crossing curve 1.1)

(* --- uniqueness ---------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_seccomp_policy () =
  let fp = apiset [ Api.Syscall 0; Api.Syscall 1; Api.Libc_sym "printf" ] in
  let policy = Core.Metrics.Uniqueness.seccomp_policy fp in
  Alcotest.(check bool) "allows read" true (contains policy "allow read (0)");
  Alcotest.(check bool) "allows write" true (contains policy "allow write (1)");
  Alcotest.(check bool) "default kill" true (contains policy "default kill");
  Alcotest.(check bool) "libc symbols ignored" false (contains policy "printf")

(* --- properties ----------------------------------------------------------- *)

let gen_store =
  let open QCheck2.Gen in
  let gen_pkg i =
    let* prob = float_range 0.001 0.999 in
    let* apis = list_size (int_range 0 6) (int_range 0 20) in
    return (pkg (Printf.sprintf "p%d" i) prob (List.map (fun n -> Api.Syscall n) apis))
  in
  let* n = int_range 1 25 in
  let* pkgs = flatten_l (List.init n gen_pkg) in
  return (Store.build ~total_installs:1_000_000 ~bins:[] ~packages:pkgs)

let prop_importance_bounds =
  QCheck2.Test.make ~name:"importance is a probability" ~count:200 gen_store
    (fun s ->
      List.for_all
        (fun api ->
          let v = Importance.importance s api in
          v >= 0.0 && v <= 1.0)
        (Store.used_apis s))

let prop_importance_vs_max_dependent =
  QCheck2.Test.make ~name:"importance >= any dependent's probability"
    ~count:200 gen_store (fun s ->
      List.for_all
        (fun api ->
          let imp = Importance.importance s api in
          List.for_all
            (fun (p : Store.pkg_row) -> imp >= p.Store.pr_prob -. 1e-9)
            (Store.dependent_rows s api))
        (Store.used_apis s))

let prop_completeness_monotone =
  QCheck2.Test.make ~name:"completeness is monotone in the syscall set"
    ~count:200
    QCheck2.Gen.(pair gen_store (list_size (int_range 0 10) (int_range 0 20)))
    (fun (s, set) ->
      let smaller = Completeness.of_syscall_set s set in
      let larger = Completeness.of_syscall_set s (21 :: 22 :: set) in
      larger >= smaller -. 1e-9)

let prop_curve_monotone =
  QCheck2.Test.make ~name:"completeness curve is monotone" ~count:100
    gen_store (fun s ->
      let curve = Completeness.curve s ~ranking:(Importance.rank_syscalls s) in
      let rec ok prev = function
        | [] -> true
        | (_, c) :: rest -> c >= prev -. 1e-12 && ok c rest
      in
      ok 0.0 curve)

(* --- Monte-Carlo validation ------------------------------------------------ *)

let mc_store =
  lazy
    (Core.Db.Pipeline.run
       (Core.Distro.Generator.generate
          ~config:
            { Core.Distro.Generator.default_config with
              n_packages = 150; seed = 23 }
          ()))

let test_montecarlo_importance () =
  let s = (Lazy.force mc_store).Core.Db.Pipeline.store in
  (* pick a few APIs across the importance range and compare the
     closed form against sampled installations *)
  let apis =
    [ Api.Syscall 0 (* read: ~1 *);
      Api.Syscall (Core.Apidb.Syscall_table.nr_of_name_exn "kexec_load");
      Api.Syscall (Core.Apidb.Syscall_table.nr_of_name_exn "statfs") ]
  in
  List.iter
    (fun api ->
      let closed = Importance.importance s api in
      let sampled =
        Core.Metrics.Montecarlo.empirical_importance ~samples:300 ~seed:5 s
          api
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s closed %.3f vs sampled %.3f" (Api.to_string api)
           closed sampled)
        true
        (abs_float (closed -. sampled) < 0.08))
    apis

let test_montecarlo_completeness () =
  let s = (Lazy.force mc_store).Core.Db.Pipeline.store in
  let ranking = Importance.rank_syscalls s in
  let top = List.filteri (fun i _ -> i < 200) ranking in
  let closed = Completeness.of_syscall_set s top in
  let sampled =
    Core.Metrics.Montecarlo.empirical_completeness ~samples:120 ~seed:9 s top
  in
  Alcotest.(check bool)
    (Printf.sprintf "closed %.3f vs sampled %.3f" closed sampled)
    true
    (abs_float (closed -. sampled) < 0.08)

let () =
  Alcotest.run "metrics"
    [ ( "importance",
        [ Alcotest.test_case "closed form" `Quick test_importance_formula;
          Alcotest.test_case "unweighted" `Quick test_unweighted;
          Alcotest.test_case "ranking" `Quick test_ranking_order ] );
      ( "completeness",
        [ Alcotest.test_case "dependency rule" `Quick test_completeness_basic;
          Alcotest.test_case "scopes" `Quick test_completeness_scope;
          Alcotest.test_case "curve" `Quick test_curve;
          Alcotest.test_case "crossing" `Quick test_crossing ] );
      ( "seccomp",
        [ Alcotest.test_case "policy text" `Quick test_seccomp_policy ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_importance_bounds;
          QCheck_alcotest.to_alcotest prop_importance_vs_max_dependent;
          QCheck_alcotest.to_alcotest prop_completeness_monotone;
          QCheck_alcotest.to_alcotest prop_curve_monotone ] );
      ( "monte-carlo",
        [ Alcotest.test_case "importance validated" `Slow
            test_montecarlo_importance;
          Alcotest.test_case "completeness validated" `Slow
            test_montecarlo_completeness ] ) ]
