(* Tests for temporal phase attribution: calibration against the
   generator's planted init/serving ground truth, the union invariant
   that keeps unphased results bit-identical, phase-filtered
   completeness monotonicity, and the snapshot format-3 phase fields
   (round-trip, plus format-2 inputs defaulting both phases to the
   full footprint). *)

module Api = Core.Apidb.Api
module Store = Core.Db.Store
module Snapshot = Core.Db.Snapshot
module Query = Core.Query.Engine
module Phases = Core.Study.Phases
module Bitset = Core.Perf.Bitset
module Rng = Core.Distro.Rng

let env = lazy (Core.Study.Env.create_small ())
let index () = (Lazy.force env).Core.Study.Env.index
let store () = (Lazy.force env).Core.Study.Env.store

(* --- calibration against planted ground truth -------------------------- *)

let test_audit_calibration () =
  let a = Phases.audit (Lazy.force env) in
  Alcotest.(check bool) "ground truth present" true (a.Phases.a_packages > 0);
  Alcotest.(check bool) "real two-phase programs planted" true
    (a.Phases.a_phased > 0);
  (* the conservative contract: widening is allowed, misses are not —
     a phase-restricted seccomp policy built on a false negative would
     kill the program at runtime *)
  Alcotest.(check int) "init false negatives"
    0 a.Phases.a_init.Phases.pa_fn;
  Alcotest.(check int) "serving false negatives"
    0 a.Phases.a_serving.Phases.pa_fn;
  Alcotest.(check int) "union violations" 0 a.Phases.a_union_violations;
  Alcotest.(check bool) "audit verdict" true (Phases.audit_passed a)

(* --- init ∪ serving = total -------------------------------------------- *)

let test_union_invariant_all_rows () =
  (* deterministic sweep over every row the pipeline produced: the
     phase slices must reassemble the exact footprint, on packages and
     binaries alike — this equality is what guarantees every unphased
     query result is unchanged by the phase machinery *)
  let store = store () in
  Array.iter
    (fun (p : Store.pkg_row) ->
      if
        not
          (Api.Set.equal
             (Api.Set.union p.Store.pr_init p.Store.pr_serving)
             p.Store.pr_apis)
      then Alcotest.failf "package %s: init ∪ serving <> total" p.Store.pr_name)
    store.Store.packages;
  List.iter
    (fun (r : Store.bin_row) ->
      if
        not
          (Api.Set.equal
             (Api.Set.union r.Store.br_init r.Store.br_serving)
             r.Store.br_resolved.Core.Analysis.Footprint.apis)
      then Alcotest.failf "binary %s: init ∪ serving <> resolved"
          r.Store.br_path)
    store.Store.bins

let qcheck_union_membership =
  (* membership view of the same invariant, over random (package, api)
     probes: an API is in the footprint iff it is in at least one
     phase slice *)
  QCheck2.Test.make ~count:500
    ~name:"api ∈ footprint <=> api ∈ init ∪ serving"
    QCheck2.Gen.(pair (int_range 0 100_000) (int_range 0 450))
    (fun (pi, nr) ->
      let store = store () in
      let p = store.Store.packages.(pi mod Array.length store.Store.packages) in
      let api = Api.Syscall nr in
      Api.Set.mem api p.Store.pr_apis
      = (Api.Set.mem api p.Store.pr_init
         || Api.Set.mem api p.Store.pr_serving))

(* --- phase-filtered completeness monotonicity -------------------------- *)

let qcheck_phase_completeness_monotone =
  (* a phase requirement set is a subset of the total footprint, so
     the same syscall set can only satisfy MORE of each package's
     phase needs: phased completeness >= unphased. (The issue text
     stated this inequality the other way round; subset-ness makes
     >= the only possible direction.) *)
  let gen_subset =
    QCheck2.Gen.(
      let* k = int_range 1 180 in
      let* seed = int_range 0 0x3fffffff in
      return (k, seed))
  in
  QCheck2.Test.make ~count:120 ~name:"phased completeness >= unphased"
    gen_subset (fun (k, seed) ->
      let idx = index () in
      let rng = Rng.create seed in
      let all_nrs =
        Array.to_list Core.Apidb.Syscall_table.all
        |> List.map (fun (e : Core.Apidb.Syscall_table.entry) ->
               e.Core.Apidb.Syscall_table.nr)
      in
      let nrs = Rng.sample rng k all_nrs in
      let all = Query.eval_syscalls idx nrs in
      let init = Query.eval_syscalls ~phase:Query.Init idx nrs in
      let serving = Query.eval_syscalls ~phase:Query.Serving idx nrs in
      init >= all -. 1e-12 && serving >= all -. 1e-12)

let test_phase_all_is_default () =
  (* ~phase:All must take exactly the unphased path *)
  let idx = index () in
  let nrs = [ 0; 1; 2; 9; 10; 158; 231 ] in
  Alcotest.(check bool) "All = default" true
    (Float.equal
       (Query.eval_syscalls ~phase:Query.All idx nrs)
       (Query.eval_syscalls idx nrs))

(* --- snapshot format 3: phases round-trip ------------------------------ *)

let test_snapshot_phase_roundtrip () =
  let analyzed = Core.Study.Env.analyzed_exn (Lazy.force env) in
  let snap = Snapshot.of_analyzed analyzed in
  let snap' =
    match Snapshot.of_string (Snapshot.to_string snap) with
    | Ok s -> s
    | Error e -> Alcotest.failf "decode: %a" Snapshot.pp_error e
  in
  let ps = snap.Snapshot.store.Store.packages in
  let ps' = snap'.Snapshot.store.Store.packages in
  Alcotest.(check int) "package count" (Array.length ps) (Array.length ps');
  let phased = ref 0 in
  Array.iteri
    (fun i (p : Store.pkg_row) ->
      let p' = ps'.(i) in
      if not (Api.Set.equal p.Store.pr_init p'.Store.pr_init) then
        Alcotest.failf "package %s: pr_init changed" p.Store.pr_name;
      if not (Api.Set.equal p.Store.pr_serving p'.Store.pr_serving) then
        Alcotest.failf "package %s: pr_serving changed" p.Store.pr_name;
      if not (Api.Set.equal p'.Store.pr_init p'.Store.pr_serving) then
        incr phased)
    ps;
  (* the round-trip must carry real attribution, not a degenerate
     everything-in-both-phases encoding *)
  Alcotest.(check bool) "some phased packages survive" true (!phased > 0)

(* --- snapshot format 2: phases default to Both ------------------------- *)

(* A hand-rolled format-2 writer for a tiny store, mirroring the v2
   wire layout (same as v3 minus the two phase sets per package/binary
   row). The current writer only emits format 3, so backward
   compatibility has to be exercised against synthesized v2 bytes. *)
let v2_bytes ~apis ~elf_apis =
  let b = Buffer.create 256 in
  let w_varint n =
    let n = ref n in
    let stop = ref false in
    while not !stop do
      let byte = !n land 0x7f in
      n := !n lsr 7;
      if !n = 0 then begin
        Buffer.add_char b (Char.chr byte);
        stop := true
      end
      else Buffer.add_char b (Char.chr (byte lor 0x80))
    done
  in
  let w_int i = w_varint ((i lsl 1) lxor (i asr 62)) in
  let w_str s =
    w_varint (String.length s);
    Buffer.add_string b s
  in
  let w_float f =
    let scratch = Bytes.create 8 in
    Bytes.set_int64_le scratch 0 (Int64.bits_of_float f);
    Buffer.add_bytes b scratch
  in
  (* dictionary in writer interning order: pr_apis first, then
     pr_apis_elf (a subset here, so it adds nothing) *)
  let dict = List.sort_uniq compare apis in
  let id api =
    let rec go i = function
      | [] -> Alcotest.failf "api not in dict"
      | a :: _ when a = api -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 dict
  in
  let w_set set =
    let bits = Bitset.of_list (List.length dict) (List.map id set) in
    w_str (Bitset.to_bytes bits)
  in
  (* payload: meta ints, source key, dict, one package row, no
     binaries, no rejects *)
  w_int 7;
  w_int 1;
  w_int 1000;
  w_str "v2-test";
  w_varint (List.length dict);
  List.iter
    (fun api ->
      match api with
      | Api.Syscall nr ->
        Buffer.add_char b '\000';
        w_int nr
      | _ -> Alcotest.failf "v2 fixture only plants syscalls")
    dict;
  w_varint 1;
  w_str "pkg-v2";
  w_int 1000;
  w_float 0.5;
  w_varint 0;
  Buffer.add_char b '\000';
  w_set apis;
  w_set elf_apis;
  w_varint 0;
  w_varint 0;
  let payload = Buffer.contents b in
  let out = Buffer.create (36 + String.length payload) in
  Buffer.add_string out "LAPISNAP";
  let scratch = Bytes.create 8 in
  Bytes.set_int32_le scratch 0 2l;
  Buffer.add_subbytes out scratch 0 4;
  Buffer.add_string out (Digest.string payload);
  Bytes.set_int64_le scratch 0 (Int64.of_int (String.length payload));
  Buffer.add_bytes out scratch;
  Buffer.add_string out payload;
  Buffer.contents out

let test_snapshot_v2_defaults_both () =
  let apis = [ Api.Syscall 0; Api.Syscall 1; Api.Syscall 60 ] in
  let bytes = v2_bytes ~apis ~elf_apis:[ Api.Syscall 0 ] in
  match Snapshot.of_string bytes with
  | Error e -> Alcotest.failf "v2 decode: %a" Snapshot.pp_error e
  | Ok snap ->
    Alcotest.(check int) "version preserved" 2
      snap.Snapshot.meta.Snapshot.version;
    let p = snap.Snapshot.store.Store.packages.(0) in
    Alcotest.(check int) "footprint size" 3
      (Api.Set.cardinal p.Store.pr_apis);
    (* pre-phase rows know nothing about time: both phases default to
       the full footprint, i.e. every API is Both *)
    Alcotest.(check bool) "init defaults to footprint" true
      (Api.Set.equal p.Store.pr_init p.Store.pr_apis);
    Alcotest.(check bool) "serving defaults to footprint" true
      (Api.Set.equal p.Store.pr_serving p.Store.pr_apis)

let () =
  Alcotest.run "phase"
    [ ( "calibration",
        [ Alcotest.test_case "audit vs planted truth" `Quick
            test_audit_calibration ] );
      ( "union-invariant",
        [ Alcotest.test_case "all rows" `Quick test_union_invariant_all_rows;
          QCheck_alcotest.to_alcotest qcheck_union_membership ] );
      ( "completeness",
        [ QCheck_alcotest.to_alcotest qcheck_phase_completeness_monotone;
          Alcotest.test_case "All is the default path" `Quick
            test_phase_all_is_default ] );
      ( "snapshot",
        [ Alcotest.test_case "format-3 round-trip" `Quick
            test_snapshot_phase_roundtrip;
          Alcotest.test_case "format-2 defaults to Both" `Quick
            test_snapshot_v2_defaults_both ] )
    ]
