(* Tests for the store and the end-to-end pipeline, including the
   automated Section 2.3 spot check: the analyzer must recover every
   package's ground-truth API set from the ELF bytes alone. *)

module Api = Core.Apidb.Api
module Db = Core.Db
module P = Core.Distro.Package

let analyzed =
  lazy
    (Db.Pipeline.run
       (Core.Distro.Generator.generate
          ~config:
            { Core.Distro.Generator.default_config with
              n_packages = 250; seed = 11 }
          ()))

let store () = (Lazy.force analyzed).Db.Pipeline.store

let test_spot_check () =
  (* the paper spot-checks static analysis against strace; here the
     generator's ground truth plays the role of the runtime trace and
     the match must be exact *)
  let mismatches = Db.Pipeline.spot_check (Lazy.force analyzed) in
  List.iter
    (fun (m : Db.Pipeline.mismatch) ->
      Printf.printf "mismatch %s: missing %d, extra %d\n" m.mm_package
        (List.length m.mm_missing) (List.length m.mm_extra))
    mismatches;
  Alcotest.(check int) "analysis recovers every footprint exactly" 0
    (List.length mismatches)

let test_package_rows () =
  let s = store () in
  Alcotest.(check int) "one row per package" 250 s.Db.Store.n_packages;
  Alcotest.(check bool) "libc6 present" true
    (Option.is_some (Db.Store.find s "libc6"))

let test_index_consistency () =
  let s = store () in
  (* the API-dependents index agrees with the package rows *)
  List.iter
    (fun api ->
      List.iter
        (fun i ->
          let p = s.Db.Store.packages.(i) in
          Alcotest.(check bool)
            (Printf.sprintf "%s really uses %s" p.Db.Store.pr_name
               (Api.to_string api))
            true
            (Api.Set.mem api p.Db.Store.pr_apis))
        (Db.Store.dependents s api))
    (List.filteri (fun i _ -> i < 200) (Db.Store.used_apis s))

let test_script_inheritance () =
  let s = store () in
  (* a package shipping a python script must inherit python2.7's
     footprint *)
  let python = Option.get (Db.Store.find s "python2.7") in
  let carrier =
    Array.to_list s.Db.Store.packages
    |> List.find_opt (fun (p : Db.Store.pkg_row) ->
           p.Db.Store.pr_name <> "python2.7"
           && List.exists
                (fun (b : Db.Store.bin_row) ->
                  b.Db.Store.br_package = p.Db.Store.pr_name
                  && b.Db.Store.br_class
                     = Core.Elf.Classify.Script Core.Elf.Classify.Python)
                s.Db.Store.bins)
  in
  match carrier with
  | None -> ()  (* no python script generated at this size: fine *)
  | Some p ->
    Alcotest.(check bool)
      (p.Db.Store.pr_name ^ " inherits the interpreter footprint") true
      (Api.Set.subset python.Db.Store.pr_apis p.Db.Store.pr_apis)

let test_library_rule () =
  (* Section 2: package footprints come from standalone executables;
     a package's shared-library-only APIs must not appear *)
  let s = store () in
  let libnuma = Option.get (Db.Store.find s "libnuma") in
  let mbind = Core.Apidb.Syscall_table.nr_of_name_exn "mbind" in
  Alcotest.(check bool) "libnuma's own footprint excludes its lib" false
    (Api.Set.mem (Api.Syscall mbind) libnuma.Db.Store.pr_apis);
  (* while the -utils package that exercises it has the call *)
  let utils = Option.get (Db.Store.find s "libnuma-utils") in
  Alcotest.(check bool) "libnuma-utils carries mbind" true
    (Api.Set.mem (Api.Syscall mbind) utils.Db.Store.pr_apis)

let test_runtime_binaries_attributed () =
  let s = store () in
  let libc_bins =
    List.filter
      (fun (b : Db.Store.bin_row) -> b.Db.Store.br_package = "libc6")
      s.Db.Store.bins
  in
  Alcotest.(check bool) "runtime binaries recorded under libc6" true
    (List.length libc_bins >= 5)

let test_bins_classified () =
  let s = store () in
  List.iter
    (fun (b : Db.Store.bin_row) ->
      Alcotest.(check bool) (b.Db.Store.br_path ^ " classified") true
        (b.Db.Store.br_class <> Core.Elf.Classify.Data))
    s.Db.Store.bins

let test_base_footprint_everywhere () =
  (* every dynamically-linked executable inherits the stage-I base *)
  let s = store () in
  let read_api = Api.Syscall 0 in
  List.iter
    (fun (b : Db.Store.bin_row) ->
      if b.Db.Store.br_class = Core.Elf.Classify.Elf_dynamic then
        Alcotest.(check bool)
          (b.Db.Store.br_path ^ " includes read via the runtime") true
          (Api.Set.mem read_api
             b.Db.Store.br_resolved.Core.Analysis.Footprint.apis))
    s.Db.Store.bins

let test_clean_corpus_quarantine () =
  (* every writer-produced binary must ingest cleanly: a nonzero
     reject counter on the generated corpus is a parser or analyzer
     regression, not noise *)
  let a = Lazy.force analyzed in
  Alcotest.(check int) "clean corpus quarantines nothing" 0
    (Db.Pipeline.quarantined a);
  Alcotest.(check bool) "reject table empty" true
    (a.Db.Pipeline.world.Core.Analysis.Resolve.stats
       .Core.Analysis.Resolve.rejects
     = [])

let test_parmap_order () =
  let xs = List.init 1000 Fun.id in
  Alcotest.(check (list int))
    "parallel map preserves input order"
    (List.map (fun x -> x * 3) xs)
    (Core.Perf.Parmap.map ~domains:4 (fun x -> x * 3) xs)

let test_parmap_exception () =
  (* a worker exception must cancel the fan-out and re-raise the
     original exception on the calling domain, not surface as a
     secondary crash from a half-filled result array *)
  match
    Core.Perf.Parmap.map ~domains:4
      (fun i -> if i = 617 then failwith "boom" else i)
      (List.init 1000 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "original exception re-raised" "boom" msg

let test_cache_equivalence () =
  (* the digest analysis cache must be invisible in the results:
     cached and uncached runs of the same distribution produce
     identical footprints, package by package and binary by binary *)
  let dist =
    Core.Distro.Generator.generate
      ~config:
        { Core.Distro.Generator.default_config with
          n_packages = 300; seed = 23 }
      ()
  in
  let cached =
    Db.Pipeline.run ~config:{ Db.Pipeline.default with cache = true } dist
  in
  let raw =
    Db.Pipeline.run ~config:{ Db.Pipeline.default with cache = false } dist
  in
  let sc = cached.Db.Pipeline.store and sr = raw.Db.Pipeline.store in
  Alcotest.(check int) "same package count" sr.Db.Store.n_packages
    sc.Db.Store.n_packages;
  Array.iteri
    (fun i (pc : Db.Store.pkg_row) ->
      let pr = sr.Db.Store.packages.(i) in
      Alcotest.(check string) "row order" pr.Db.Store.pr_name
        pc.Db.Store.pr_name;
      Alcotest.(check bool)
        (pc.Db.Store.pr_name ^ " package footprint identical") true
        (Api.Set.equal pc.Db.Store.pr_apis pr.Db.Store.pr_apis);
      Alcotest.(check bool)
        (pc.Db.Store.pr_name ^ " ELF-only footprint identical") true
        (Api.Set.equal pc.Db.Store.pr_apis_elf pr.Db.Store.pr_apis_elf))
    sc.Db.Store.packages;
  Alcotest.(check int) "same binary count"
    (List.length sr.Db.Store.bins)
    (List.length sc.Db.Store.bins);
  List.iter2
    (fun (bc : Db.Store.bin_row) (br : Db.Store.bin_row) ->
      Alcotest.(check string) "binary order" br.Db.Store.br_path
        bc.Db.Store.br_path;
      Alcotest.(check bool)
        (bc.Db.Store.br_path ^ " resolved footprint identical") true
        (Api.Set.equal bc.Db.Store.br_resolved.Core.Analysis.Footprint.apis
           br.Db.Store.br_resolved.Core.Analysis.Footprint.apis);
      Alcotest.(check int)
        (bc.Db.Store.br_path ^ " unresolved-site count identical")
        br.Db.Store.br_resolved.Core.Analysis.Footprint.unresolved_sites
        bc.Db.Store.br_resolved.Core.Analysis.Footprint.unresolved_sites)
    sc.Db.Store.bins sr.Db.Store.bins;
  Alcotest.(check int) "cached run passes the spot check" 0
    (List.length (Db.Pipeline.spot_check cached));
  Alcotest.(check int) "uncached run passes the spot check" 0
    (List.length (Db.Pipeline.spot_check raw))

let () =
  Alcotest.run "pipeline"
    [ ( "pipeline",
        [ Alcotest.test_case "spot check (Section 2.3)" `Slow test_spot_check;
          Alcotest.test_case "package rows" `Quick test_package_rows;
          Alcotest.test_case "index consistency" `Quick
            test_index_consistency;
          Alcotest.test_case "script inheritance" `Quick
            test_script_inheritance;
          Alcotest.test_case "library rule" `Quick test_library_rule;
          Alcotest.test_case "runtime attribution" `Quick
            test_runtime_binaries_attributed;
          Alcotest.test_case "binaries classified" `Quick
            test_bins_classified;
          Alcotest.test_case "base footprint" `Quick
            test_base_footprint_everywhere;
          Alcotest.test_case "clean corpus quarantines nothing" `Quick
            test_clean_corpus_quarantine;
          Alcotest.test_case "parmap preserves order" `Quick
            test_parmap_order;
          Alcotest.test_case "parmap propagates exceptions" `Quick
            test_parmap_exception;
          Alcotest.test_case "cache equivalence" `Slow
            test_cache_equivalence ] ) ]
