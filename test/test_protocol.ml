(* Tests for the versioned wire protocol: version-negotiation
   goldens, JSON and binary codec round-trips (example-based and
   property-based), total decoding under truncation and bit flips,
   cross-codec canonical keys, and the latency histogram the [stats]
   op reports. Everything here is index-free — the protocol is pure
   data. *)

module P = Core.Query.Protocol
module Json = Core.Query.Json
module Histogram = Core.Perf.Histogram

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

(* --- version negotiation -------------------------------------------- *)

let test_negotiate () =
  (match P.negotiate [ 1 ] with
   | Ok 1 -> ()
   | _ -> Alcotest.fail "negotiate [1] must pick 1");
  (match P.negotiate [ 99; 2; 1 ] with
   | Ok 1 -> ()
   | _ -> Alcotest.fail "negotiate picks the highest common version");
  (match P.negotiate [ 2; 3 ] with
   | Error (kind, _) ->
     Alcotest.(check string) "future-only proposal" P.unsupported_version
       kind
   | Ok v -> Alcotest.failf "accepted unknown version %d" v);
  (match P.negotiate [] with
   | Error (kind, _) ->
     Alcotest.(check string) "empty proposal" P.unsupported_version kind
   | Ok v -> Alcotest.failf "accepted empty proposal as %d" v);
  Alcotest.(check int) "current version" 1 P.current_version;
  Alcotest.(check (list int)) "supported set" [ 1 ] P.supported_versions

let test_hello_goldens () =
  (* the wire spelling of hello, both directions *)
  let req s =
    match P.request_of_json (parse_exn s) with
    | Ok r -> r.P.rq_op
    | Error _ -> Alcotest.failf "hello %S did not parse" s
  in
  (match req {|{"op":"hello","versions":[1,2]}|} with
   | P.Hello [ 1; 2 ] -> ()
   | _ -> Alcotest.fail "hello versions not carried through");
  (match req {|{"op":"hello"}|} with
   | P.Hello vs ->
     Alcotest.(check (list int)) "absent versions default to supported"
       P.supported_versions vs
   | _ -> Alcotest.fail "bare hello did not parse as Hello");
  let resp =
    {
      P.rs_id = None;
      rs_result =
        Ok (P.Hello_r { version = 1; codecs = P.codec_names });
    }
  in
  Alcotest.(check string) "hello response golden"
    {|{"ok":true,"op":"hello","version":1,"codecs":["json","binary"]}|}
    (Json.to_string (P.json_of_response resp))

(* --- representative values ------------------------------------------ *)

let sample_requests =
  [ { P.rq_id = None; rq_op = P.Hello [ 1 ] };
    { P.rq_id = Some (Json.Num 7.0); rq_op = P.Ping };
    { P.rq_id = Some (Json.Str "abc"); rq_op = P.Stats };
    {
      P.rq_id = None;
      rq_op = P.Importance { api = "read"; phase = Core.Query.Engine.Init };
    };
    {
      P.rq_id = Some (Json.Num 3.0);
      rq_op =
        P.Completeness
          { syscalls = [ 0; 1; 2 ]; phase = Core.Query.Engine.All };
    };
    {
      P.rq_id = Some (Json.Num 123456.0);
      rq_op =
        P.Partial_completeness
          {
            syscalls = [ 5; 9; 60 ];
            phase = Core.Query.Engine.Serving;
            lo = 10;
            hi = 250;
          };
    };
    { P.rq_id = None; rq_op = P.Top 10 };
    {
      P.rq_id = Some (Json.Bool true);
      rq_op = P.Dependents { api = "syscall:1"; limit = Some 5 };
    };
    {
      P.rq_id = None;
      rq_op = P.Dependents { api = "mmap"; limit = None };
    };
    { P.rq_id = Some Json.Null; rq_op = P.Unknown "explode" };
    {
      (* the scatter path's coalesced frame: rides through every
         round-trip, truncation and bitflip sweep below *)
      P.rq_id = Some (Json.Num 42.0);
      rq_op =
        P.Batch
          [ { P.rq_id = Some (Json.Num 1.0); rq_op = P.Ping };
            {
              P.rq_id = Some (Json.Num 2.0);
              rq_op =
                P.Partial_completeness
                  {
                    syscalls = [ 0; 7 ];
                    phase = Core.Query.Engine.All;
                    lo = 0;
                    hi = 50;
                  };
            };
            { P.rq_id = None; rq_op = P.Top 3 }
          ];
    };
    { P.rq_id = None; rq_op = P.Batch [] }
  ]

let sample_responses =
  [ {
      P.rs_id = Some (Json.Num 1.0);
      rs_result = Ok (P.Hello_r { version = 1; codecs = P.codec_names });
    };
    { P.rs_id = None; rs_result = Ok P.Pong };
    {
      P.rs_id = Some (Json.Str "x");
      rs_result =
        Ok
          (P.Stats_r
             {
               st_packages = 200;
               st_apis = 321;
               st_binaries = 456;
               st_installs = 100000;
               st_gauges = [ ("queue_depth", 3.0); ("cache_hits", 17.0) ];
               st_hists =
                 [ ( "serve:ping",
                     {
                       Histogram.h_count = 12;
                       h_p50 = 1000.0;
                       h_p95 = 2000.0;
                       h_p99 = 3000.0;
                       h_max = 4096.0;
                     } ) ];
             });
    };
    {
      P.rs_id = None;
      rs_result =
        Ok
          (P.Importance_r
             {
               api = "read";
               phase = Core.Query.Engine.All;
               importance = 0.875;
               unweighted = 0.5;
             });
    };
    {
      P.rs_id = Some (Json.Num 2.0);
      rs_result =
        Ok
          (P.Completeness_r
             {
               n_syscalls = 3;
               phase = Core.Query.Engine.Init;
               completeness = 0.25;
             });
    };
    {
      P.rs_id = Some (Json.Num 3.0);
      rs_result =
        Ok (P.Partial_r { lo = 0; hi = 100; num = 123.5; den = 456.25 });
    };
    {
      P.rs_id = None;
      rs_result =
        Ok
          (P.Top_r
             [ {
                 Core.Query.Engine.rk_nr = 1;
                 rk_name = "write";
                 rk_importance = 0.75;
                 rk_unweighted_elf = 0.5;
               };
               {
                 Core.Query.Engine.rk_nr = 0;
                 rk_name = "read";
                 rk_importance = 0.5;
                 rk_unweighted_elf = 0.25;
               }
             ]);
    };
    {
      P.rs_id = Some (Json.Num 4.0);
      rs_result =
        Ok
          (P.Dependents_r
             {
               api = "syscall:0";
               packages = [ ("pkg-a", 0.5); ("pkg-b", 0.125) ];
             });
    };
    P.error_response ~id:(Json.Num 9.0) ~kind:P.degraded
      "shard 127.0.0.1:7071 unavailable: timeout";
    P.error_response ~kind:P.overloaded "router queue full";
    {
      P.rs_id = None;
      rs_result =
        Ok
          (P.Batch_r
             [ { P.rs_id = Some (Json.Num 1.0); rs_result = Ok P.Pong };
               {
                 P.rs_id = Some (Json.Num 2.0);
                 rs_result =
                   Ok
                     (P.Partial_r
                        { lo = 0; hi = 50; num = 12.5; den = 80.0 });
               };
               P.error_response ~id:(Json.Num 3.0) ~kind:P.unknown_op
                 "zz-op"
             ]);
    }
  ]

(* --- JSON codec round-trips ----------------------------------------- *)

let test_json_request_roundtrip () =
  List.iter
    (fun r ->
      let s = Json.to_string (P.json_of_request r) in
      match P.request_of_json (parse_exn s) with
      | Ok r' when r' = r -> ()
      | Ok _ -> Alcotest.failf "JSON request changed in flight: %s" s
      | Error _ -> Alcotest.failf "canonical spelling rejected: %s" s)
    sample_requests

let test_json_response_roundtrip () =
  (* floats above were chosen exactly representable in the JSON
     printer, so equality is exact *)
  List.iter
    (fun r ->
      let j = P.json_of_response r in
      match P.response_of_json j with
      | Ok r' when r' = r -> ()
      | Ok _ ->
        Alcotest.failf "JSON response changed in flight: %s"
          (Json.to_string j)
      | Error e ->
        Alcotest.failf "own spelling rejected (%s): %s" e (Json.to_string j))
    sample_responses

let test_parse_error_goldens () =
  (* the stable error kinds clients match on *)
  let kind_of s =
    match P.request_of_json (parse_exn s) with
    | Ok r -> Alcotest.failf "%S parsed as %s" s (P.op_name r.P.rq_op)
    | Error resp -> (
      match resp.P.rs_result with
      | Error e -> e.P.e_kind
      | Ok _ -> Alcotest.fail "error case carried an ok reply")
  in
  Alcotest.(check string) "missing op" P.bad_request
    (kind_of {|{"noop":1}|});
  Alcotest.(check string) "missing api" P.bad_request
    (kind_of {|{"op":"importance"}|});
  Alcotest.(check string) "bad phase" P.bad_phase
    (kind_of {|{"op":"completeness","syscalls":[1],"phase":"warmup"}|});
  Alcotest.(check string) "non-array syscalls" P.bad_request
    (kind_of {|{"op":"completeness","syscalls":"read"}|});
  Alcotest.(check string) "partial range not ints" P.bad_request
    (kind_of {|{"op":"partial-completeness","syscalls":[1],"lo":0}|})

let test_cross_codec_key () =
  (* the cache key must not depend on which codec carried the request *)
  List.iter
    (fun r ->
      let payload s = String.sub s 5 (String.length s - 5) in
      match P.Bin.decode_request (payload (P.Bin.encode_request r)) with
      | Ok r' ->
        Alcotest.(check string)
          (Printf.sprintf "key of %s" (P.op_name r.P.rq_op))
          (P.canonical_key r) (P.canonical_key r')
      | Error e -> Alcotest.failf "binary re-decode failed: %s" e)
    sample_requests

(* --- binary codec ---------------------------------------------------- *)

let payload s = String.sub s 5 (String.length s - 5)

let test_bin_request_roundtrip () =
  List.iter
    (fun r ->
      match P.Bin.decode_request (payload (P.Bin.encode_request r)) with
      | Ok r' when r' = r -> ()
      | Ok _ ->
        Alcotest.failf "binary request changed in flight: %s"
          (P.op_name r.P.rq_op)
      | Error e ->
        Alcotest.failf "binary request rejected (%s): %s" e
          (P.op_name r.P.rq_op))
    sample_requests

let test_bin_response_roundtrip () =
  List.iter
    (fun r ->
      match P.Bin.decode_response (payload (P.Bin.encode_response r)) with
      | Ok r' when r' = r -> ()
      | Ok _ -> Alcotest.fail "binary response changed in flight"
      | Error e -> Alcotest.failf "binary response rejected: %s" e)
    sample_responses

let test_bin_direction_confusion () =
  (* request and response tags are disjoint ranges: decoding a frame
     in the wrong direction must fail loudly, not mis-parse *)
  List.iter
    (fun r ->
      match P.Bin.decode_response (payload (P.Bin.encode_request r)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "a request decoded as a response")
    sample_requests;
  List.iter
    (fun r ->
      match P.Bin.decode_request (payload (P.Bin.encode_response r)) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "a response decoded as a request")
    sample_responses

let test_bin_frame_channel () =
  (* input_frame over a byte stream: clean frames in sequence, then a
     clean EOF; wrong magic and mid-frame truncation are [`Bad] *)
  let with_bytes s f =
    let path = Filename.temp_file "lapis-proto" ".bin" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        Out_channel.with_open_bin path (fun oc -> output_string oc s);
        In_channel.with_open_bin path f)
  in
  let f1 = P.Bin.encode_request (List.hd sample_requests) in
  let f2 = P.Bin.encode_response (List.hd sample_responses) in
  with_bytes (f1 ^ f2) (fun ic ->
      (match P.Bin.input_frame ic with
       | Ok p -> Alcotest.(check string) "frame 1 payload" (payload f1) p
       | Error _ -> Alcotest.fail "frame 1 unreadable");
      (match P.Bin.input_frame ic with
       | Ok p -> Alcotest.(check string) "frame 2 payload" (payload f2) p
       | Error _ -> Alcotest.fail "frame 2 unreadable");
      match P.Bin.input_frame ic with
      | Error `Eof -> ()
      | Ok _ -> Alcotest.fail "phantom frame after the stream"
      | Error (`Bad m) -> Alcotest.failf "clean EOF read as Bad: %s" m);
  with_bytes ("GET / HTTP/1.0" ^ f1) (fun ic ->
      match P.Bin.input_frame ic with
      | Error (`Bad _) -> ()
      | _ -> Alcotest.fail "wrong magic must be Bad");
  for cut = 1 to String.length f1 - 1 do
    with_bytes (String.sub f1 0 cut) (fun ic ->
        match P.Bin.input_frame ic with
        | Error (`Bad _) -> ()
        | Error `Eof -> Alcotest.failf "mid-frame EOF at %d read as Eof" cut
        | Ok _ -> Alcotest.failf "truncation at %d produced a frame" cut)
  done

(* --- batch nesting ---------------------------------------------------

   A batch may not carry a batch: one level of coalescing is the
   protocol's whole contract, and rejecting nesting at decode keeps a
   malicious frame from recursing the decoder. Both codecs, both
   directions. *)

let nested_req =
  { P.rq_id = None; rq_op = P.Batch [ { P.rq_id = None; rq_op = P.Batch [] } ] }

let nested_resp =
  {
    P.rs_id = None;
    rs_result =
      Ok (P.Batch_r [ { P.rs_id = None; rs_result = Ok (P.Batch_r []) } ]);
  }

let test_batch_nesting_rejected () =
  (match
     P.request_of_json
       (parse_exn {|{"op":"batch","requests":[{"op":"batch","requests":[]}]}|})
   with
   | Error { P.rs_result = Error e; _ } ->
     Alcotest.(check string) "json request kind" P.bad_request e.P.e_kind
   | Error _ -> Alcotest.fail "nested batch: error without a kind"
   | Ok _ -> Alcotest.fail "nested JSON batch request parsed");
  (match P.response_of_json (P.json_of_response nested_resp) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "nested JSON batch response parsed");
  (match P.Bin.decode_request (payload (P.Bin.encode_request nested_req)) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "nested binary batch request decoded");
  match P.Bin.decode_response (payload (P.Bin.encode_response nested_resp)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested binary batch response decoded"

let test_bin_truncation_total () =
  (* every prefix of every payload decodes to a value, never raises *)
  let check_total decode what s =
    for cut = 0 to String.length s do
      match decode (String.sub s 0 cut) with
      | (Ok _ | Error _) -> ()
      | exception e ->
        Alcotest.failf "%s raised %s at prefix %d" what
          (Printexc.to_string e) cut
    done
  in
  List.iter
    (fun r ->
      check_total P.Bin.decode_request "request decode"
        (payload (P.Bin.encode_request r)))
    sample_requests;
  List.iter
    (fun r ->
      check_total P.Bin.decode_response "response decode"
        (payload (P.Bin.encode_response r)))
    sample_responses

(* --- property tests -------------------------------------------------- *)

let gen_phase =
  QCheck2.Gen.oneofl
    [ Core.Query.Engine.All; Core.Query.Engine.Init;
      Core.Query.Engine.Serving ]

let gen_id =
  QCheck2.Gen.(
    oneof
      [ return None;
        map (fun n -> Some (Json.Num (float_of_int n))) (int_bound 1000000);
        map (fun s -> Some (Json.Str s)) (string_size (int_bound 8)) ])

let gen_simple_req =
  QCheck2.Gen.(
    oneof
      [ return P.Ping;
        return P.Stats;
        map (fun vs -> P.Hello vs) (list_size (int_bound 4) (int_bound 9));
        map2
          (fun api phase -> P.Importance { api; phase })
          (oneofl [ "read"; "mmap"; "syscall:7"; "not-an-api" ])
          gen_phase;
        map2
          (fun syscalls phase -> P.Completeness { syscalls; phase })
          (list_size (int_bound 40) (int_bound 447))
          gen_phase;
        map
          (fun (syscalls, phase, lo, len) ->
            P.Partial_completeness
              { syscalls; phase; lo; hi = lo + len })
          (quad
             (list_size (int_bound 40) (int_bound 447))
             gen_phase (int_bound 500) (int_bound 500));
        map (fun n -> P.Top n) (int_bound 64);
        map2
          (fun api limit -> P.Dependents { api; limit })
          (oneofl [ "read"; "syscall:0" ])
          (opt (int_bound 20));
        map (fun s -> P.Unknown ("zz-" ^ s)) (string_size (int_bound 6)) ])

(* batches carry simple ops only — nesting is a protocol error,
   covered by its own test *)
let gen_req =
  QCheck2.Gen.(
    oneof
      [ gen_simple_req;
        map
          (fun rs -> P.Batch rs)
          (list_size (int_bound 5)
             (map2
                (fun rq_id rq_op -> { P.rq_id; rq_op })
                gen_id gen_simple_req)) ])

let gen_request =
  QCheck2.Gen.map2 (fun rq_id rq_op -> { P.rq_id; rq_op }) gen_id gen_req

let prop_codecs_agree =
  QCheck2.Test.make ~count:300 ~name:"both codecs round-trip and agree"
    gen_request (fun r ->
      let via_json =
        match
          P.request_of_json
            (parse_exn (Json.to_string (P.json_of_request r)))
        with
        | Ok r' -> r'
        | Error _ -> QCheck2.Test.fail_report "JSON rejected its own output"
      in
      let via_bin =
        match P.Bin.decode_request (payload (P.Bin.encode_request r)) with
        | Ok r' -> r'
        | Error e -> QCheck2.Test.fail_reportf "binary rejected: %s" e
      in
      via_json = r && via_bin = r
      && P.canonical_key via_json = P.canonical_key via_bin)

let prop_bitflip_never_raises =
  QCheck2.Test.make ~count:300 ~name:"bit-flipped frames never raise"
    QCheck2.Gen.(triple gen_request (int_bound 10000) (int_bound 7))
    (fun (r, pos, bit) ->
      let s = Bytes.of_string (payload (P.Bin.encode_request r)) in
      if Bytes.length s = 0 then true
      else begin
        let pos = pos mod Bytes.length s in
        Bytes.set s pos
          (Char.chr (Char.code (Bytes.get s pos) lxor (1 lsl bit)));
        let s = Bytes.to_string s in
        match (P.Bin.decode_request s, P.Bin.decode_response s) with
        | (Ok _ | Error _), (Ok _ | Error _) -> true
        | exception e ->
          QCheck2.Test.fail_reportf "decode raised %s"
            (Printexc.to_string e)
      end)

(* --- histograms ------------------------------------------------------ *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  Alcotest.(check (float 0.0)) "empty p99" 0.0 (Histogram.quantile h 0.99);
  for v = 1 to 1000 do
    Histogram.observe h v
  done;
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  let close what got want =
    (* bucket representative error: 16 linear sub-buckets per power of
       two keeps any value within ~6.25% of its bucket *)
    if Float.abs (got -. want) /. want > 0.07 then
      Alcotest.failf "%s: %.1f not within 7%% of %.1f" what got want
  in
  let s = Histogram.summary h in
  close "p50" s.Histogram.h_p50 500.0;
  close "p95" s.Histogram.h_p95 950.0;
  close "p99" s.Histogram.h_p99 990.0;
  Alcotest.(check (float 0.0)) "max is exact" 1000.0 s.Histogram.h_max;
  (* extremes clamp to observed values *)
  Alcotest.(check (float 0.0)) "q=0 is the min" 1.0
    (Histogram.quantile h 0.0);
  Alcotest.(check (float 0.0)) "q=1 is the max" 1000.0
    (Histogram.quantile h 1.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.observe a) [ 10; 20; 30 ];
  List.iter (Histogram.observe b) [ 1000; 2000 ];
  Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 5 (Histogram.count a);
  Alcotest.(check int) "source unchanged" 2 (Histogram.count b);
  Alcotest.(check (float 0.0)) "merged max" 2000.0
    (Histogram.quantile a 1.0)

let prop_histogram_bounds =
  QCheck2.Test.make ~count:200 ~name:"quantiles stay within observed range"
    QCheck2.Gen.(list_size (int_range 1 200) (int_bound 5_000_000))
    (fun vs ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) vs;
      let lo = float_of_int (List.fold_left min max_int vs) in
      let hi = float_of_int (List.fold_left max 0 vs) in
      List.for_all
        (fun q ->
          let v = Histogram.quantile h q in
          v >= lo && v <= hi)
        [ 0.0; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ])

let () =
  Alcotest.run "protocol"
    [ ( "version",
        [ Alcotest.test_case "negotiate" `Quick test_negotiate;
          Alcotest.test_case "hello goldens" `Quick test_hello_goldens ] );
      ( "json",
        [ Alcotest.test_case "request round-trip" `Quick
            test_json_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_json_response_roundtrip;
          Alcotest.test_case "error kinds" `Quick test_parse_error_goldens;
          Alcotest.test_case "cross-codec cache key" `Quick
            test_cross_codec_key ] );
      ( "binary",
        [ Alcotest.test_case "request round-trip" `Quick
            test_bin_request_roundtrip;
          Alcotest.test_case "response round-trip" `Quick
            test_bin_response_roundtrip;
          Alcotest.test_case "direction confusion" `Quick
            test_bin_direction_confusion;
          Alcotest.test_case "frame channel" `Quick test_bin_frame_channel;
          Alcotest.test_case "batch nesting rejected" `Quick
            test_batch_nesting_rejected;
          Alcotest.test_case "truncation total" `Quick
            test_bin_truncation_total ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_codecs_agree;
          QCheck_alcotest.to_alcotest prop_bitflip_never_raises ] );
      ( "histogram",
        [ Alcotest.test_case "quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge" `Quick test_histogram_merge;
          QCheck_alcotest.to_alcotest prop_histogram_bounds ] )
    ]
