(* Tests for the indexed query engine: equality with the closed-form
   oracles on a generated corpus, the hand-rolled JSON codec, and the
   serve-loop protocol (including malformed input). *)

module Api = Core.Apidb.Api
module Syscall_table = Core.Apidb.Syscall_table
module Store = Core.Db.Store
module Query = Core.Query.Engine
module Json = Core.Query.Json
module Serve = Core.Query.Serve
module Importance = Core.Metrics.Importance
module Completeness = Core.Metrics.Completeness
module Rng = Core.Distro.Rng

let env = lazy (Core.Study.Env.create_small ())
let index () = (Lazy.force env).Core.Study.Env.index
let store () = (Lazy.force env).Core.Study.Env.store

let tol = 1e-12

let check_close name a b =
  if Float.abs (a -. b) > tol then
    Alcotest.failf "%s: index %.17g vs oracle %.17g (diff %g)" name a b
      (Float.abs (a -. b))

(* --- index vs oracle --------------------------------------------------- *)

let test_importance_matches_oracle () =
  let idx = index () and store = store () in
  Array.iter
    (fun (e : Syscall_table.entry) ->
      let api = Api.Syscall e.Syscall_table.nr in
      check_close
        ("importance " ^ e.Syscall_table.name)
        (Importance.of_index idx api)
        (Importance.importance store api);
      check_close
        ("unweighted " ^ e.Syscall_table.name)
        (Importance.unweighted_of_index idx api)
        (Importance.unweighted store api);
      check_close
        ("unweighted-elf " ^ e.Syscall_table.name)
        (Importance.unweighted_elf_of_index idx api)
        (Importance.unweighted_elf store api))
    Syscall_table.all;
  (* APIs the corpus never mentions *)
  check_close "unknown syscall"
    (Importance.of_index idx (Api.Syscall 4095))
    (Importance.importance store (Api.Syscall 4095));
  check_close "unknown pseudo-file"
    (Importance.of_index idx (Api.Pseudo_file "/proc/nope"))
    (Importance.importance store (Api.Pseudo_file "/proc/nope"))

let test_ranking_matches_oracle () =
  Alcotest.(check (list int)) "rankings identical"
    (Importance.rank_syscalls (store ()))
    (Importance.rank_syscalls_of_index (index ()))

let random_subsets ~n ~max_size =
  let rng = Rng.create 777 in
  let all_nrs =
    Array.to_list Syscall_table.all
    |> List.map (fun (e : Syscall_table.entry) -> e.Syscall_table.nr)
  in
  List.init n (fun _ ->
      let k = 1 + Rng.int rng max_size in
      Rng.sample rng k all_nrs)

let test_subset_completeness_matches_oracle () =
  let idx = index () and store = store () in
  List.iteri
    (fun i nrs ->
      check_close
        (Printf.sprintf "subset %d (%d syscalls)" i (List.length nrs))
        (Completeness.of_syscall_set_index idx nrs)
        (Completeness.of_syscall_set store nrs))
    (random_subsets ~n:200 ~max_size:200);
  (* degenerate subsets *)
  check_close "empty subset"
    (Completeness.of_syscall_set_index idx [])
    (Completeness.of_syscall_set store []);
  let everything =
    Array.to_list Syscall_table.all
    |> List.map (fun (e : Syscall_table.entry) -> e.Syscall_table.nr)
  in
  check_close "all syscalls"
    (Completeness.of_syscall_set_index idx everything)
    (Completeness.of_syscall_set store everything)

let test_predicate_completeness_matches_oracle () =
  let idx = index () and store = store () in
  (* a support predicate over every API kind, not just syscalls *)
  let preds =
    [ ("all", fun _ -> true);
      ("none", fun _ -> false);
      ( "syscalls under 200",
        function Api.Syscall nr -> nr < 200 | _ -> true );
      ( "no ioctls",
        function Api.Vop (Api.Ioctl, _) -> false | _ -> true );
      ( "no proc",
        function
        | Api.Pseudo_file p -> not (String.length p >= 5 && String.sub p 0 5 = "/proc")
        | _ -> true ) ]
  in
  List.iter
    (fun (name, pred) ->
      check_close ("all-apis " ^ name)
        (Completeness.of_index ~scope:Completeness.All_apis idx
           ~supported:pred)
        (Completeness.weighted_completeness ~scope:Completeness.All_apis
           store ~supported:pred);
      check_close ("syscalls-only " ^ name)
        (Completeness.of_index ~scope:Completeness.Syscalls_only idx
           ~supported:pred)
        (Completeness.weighted_completeness
           ~scope:Completeness.Syscalls_only store ~supported:pred))
    preds

let test_dependents_ranked () =
  let idx = index () and store = store () in
  let api =
    (* most important syscall: guaranteed to have dependents *)
    Api.Syscall (List.hd (Importance.rank_syscalls store))
  in
  let ranked = Query.dependents_ranked idx api in
  Alcotest.(check bool) "non-empty" true (ranked <> []);
  (* sorted by probability, descending *)
  let rec sorted = function
    | (_, a) :: ((_, b) :: _ as rest) -> a >= b && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by prob" true (sorted ranked);
  Alcotest.(check int) "same population"
    (List.length (Store.dependents store api))
    (List.length ranked);
  let limited = Query.dependents_ranked ~limit:3 idx api in
  Alcotest.(check int) "limit honored" (min 3 (List.length ranked))
    (List.length limited)

let test_sharded_matches_unsharded () =
  (* the sharded evaluator regroups the numerator sum by package
     range, so it may differ from the single sweep only by float
     reassociation — within 1e-12, never more *)
  let idx = index () in
  List.iteri
    (fun i nrs ->
      let single = Query.eval_syscalls idx nrs in
      List.iter
        (fun shards ->
          check_close
            (Printf.sprintf "subset %d sharded x%d" i shards)
            (Query.eval_syscalls_sharded ~shards idx nrs)
            single)
        [ 1; 2; 7 ])
    (random_subsets ~n:60 ~max_size:150);
  check_close "empty subset sharded"
    (Query.eval_syscalls_sharded ~shards:4 idx [])
    (Query.eval_syscalls idx [])

let test_eval_subsets_batch () =
  let idx = index () and store = store () in
  let subsets = random_subsets ~n:50 ~max_size:120 in
  let batch = Query.eval_subsets idx subsets in
  Alcotest.(check int) "one answer per subset" (List.length subsets)
    (List.length batch);
  List.iter2
    (fun nrs v -> check_close "batch element" v
        (Completeness.of_syscall_set store nrs))
    subsets batch

(* --- JSON codec -------------------------------------------------------- *)

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_json_roundtrip () =
  let cases =
    [ "null"; "true"; "false"; "0"; "-17"; "3.5"; "\"\"";
      "\"a b\\\"c\\\\d\""; "[]"; "[1,2,3]"; "{}";
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}" ]
  in
  List.iter
    (fun s ->
      let v = parse_exn s in
      Alcotest.(check string)
        ("re-parse " ^ s)
        (Json.to_string v)
        (Json.to_string (parse_exn (Json.to_string v))))
    cases;
  (* escapes and unicode decode to the right characters *)
  (match parse_exn "\"\\u0041\\u00e9\\ud83d\\ude00\\n\"" with
   | Json.Str s -> Alcotest.(check string) "unicode" "A\xc3\xa9\xf0\x9f\x98\x80\n" s
   | _ -> Alcotest.fail "expected a string");
  (* numbers survive round-trips exactly *)
  (match parse_exn "0.1" with
   | Json.Num f -> Alcotest.(check bool) "0.1 exact" true (f = 0.1)
   | _ -> Alcotest.fail "expected a number")

let test_json_rejects () =
  let bad =
    [ ""; "{"; "}"; "[1,"; "[1 2]"; "{\"a\"}"; "{\"a\":}"; "tru";
      "\"unterminated"; "\"bad \\q escape\""; "1 2"; "{\"a\":1} trailing";
      "nan"; "--1"; "\"\\ud83d\"" ]
  in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok v ->
        Alcotest.failf "parse %S unexpectedly gave %s" s (Json.to_string v)
      | Error _ -> ())
    bad

(* --- serve protocol ---------------------------------------------------- *)

let respond line = parse_exn (Serve.handle_line (index ()) line)

let get name v =
  match Json.member name v with
  | Some x -> x
  | None -> Alcotest.failf "response lacks %S: %s" name (Json.to_string v)

let is_ok v = match get "ok" v with Json.Bool b -> b | _ -> false

let error_kind v =
  match Json.member "kind" (get "error" v) with
  | Some (Json.Str k) -> k
  | _ -> Alcotest.failf "no error kind in %s" (Json.to_string v)

let test_serve_ops () =
  let r = respond {|{"op":"ping","id":42}|} in
  Alcotest.(check bool) "ping ok" true (is_ok r);
  (match get "id" r with
   | Json.Num f -> Alcotest.(check (float 0.0)) "id echoed" 42.0 f
   | _ -> Alcotest.fail "id not echoed");
  let r = respond {|{"op":"stats"}|} in
  Alcotest.(check bool) "stats ok" true (is_ok r);
  (match get "n_packages" r with
   | Json.Num f ->
     Alcotest.(check int) "stats package count"
       (Array.length (store ()).Store.packages)
       (int_of_float f)
   | _ -> Alcotest.fail "n_packages missing");
  let r = respond {|{"op":"importance","api":"read"}|} in
  Alcotest.(check bool) "importance ok" true (is_ok r);
  (match get "importance" r with
   | Json.Num f ->
     check_close "served importance" f
       (Importance.importance (store ()) (Api.Syscall 0))
   | _ -> Alcotest.fail "importance missing");
  let r = respond {|{"op":"completeness","syscalls":[0,1,2,3]}|} in
  (match get "completeness" r with
   | Json.Num f ->
     check_close "served completeness" f
       (Completeness.of_syscall_set (store ()) [ 0; 1; 2; 3 ])
   | _ -> Alcotest.fail "completeness missing");
  let r = respond {|{"op":"top","n":5}|} in
  (match get "syscalls" r with
   | Json.Arr l -> Alcotest.(check int) "top 5 rows" 5 (List.length l)
   | _ -> Alcotest.fail "syscalls missing");
  let r = respond {|{"op":"dependents","api":"syscall:0","limit":2}|} in
  (match get "packages" r with
   | Json.Arr l ->
     Alcotest.(check bool) "dependents limited" true (List.length l <= 2)
   | _ -> Alcotest.fail "packages missing")

let test_serve_errors () =
  (* malformed JSON never kills the loop: it answers with a parse error *)
  let r = respond "this is not json" in
  Alcotest.(check bool) "parse error is a response" false (is_ok r);
  Alcotest.(check string) "parse kind" "parse" (error_kind r);
  let r = respond {|{"op":"explode"}|} in
  Alcotest.(check bool) "unknown op rejected" false (is_ok r);
  Alcotest.(check string) "unknown-op kind" "unknown-op" (error_kind r);
  let r = respond {|{"noop":1}|} in
  Alcotest.(check bool) "missing op rejected" false (is_ok r);
  let r = respond {|{"op":"importance"}|} in
  Alcotest.(check bool) "missing api rejected" false (is_ok r);
  let r = respond {|{"op":"importance","api":"syscall:zero"}|} in
  Alcotest.(check bool) "bad api string rejected" false (is_ok r);
  let r = respond {|{"op":"completeness","syscalls":"read"}|} in
  Alcotest.(check bool) "non-array syscalls rejected" false (is_ok r);
  (* error responses still echo the request id *)
  let r = respond {|{"op":"explode","id":7}|} in
  (match get "id" r with
   | Json.Num f -> Alcotest.(check (float 0.0)) "id echoed on error" 7.0 f
   | _ -> Alcotest.fail "id not echoed on error")

let test_serve_loop () =
  (* full loop over real channels: blank lines skipped, one JSON line
     out per JSON line in, EOF terminates *)
  let input = {|{"op":"ping"}

not json
{"op":"stats"}
|} in
  let in_path = Filename.temp_file "lapis-serve" ".in" in
  let out_path = Filename.temp_file "lapis-serve" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove in_path; Sys.remove out_path)
    (fun () ->
      Out_channel.with_open_bin in_path (fun oc ->
          output_string oc input);
      In_channel.with_open_bin in_path (fun ic ->
          Out_channel.with_open_bin out_path (fun oc ->
              Serve.loop (index ()) ic oc));
      let lines =
        In_channel.with_open_bin out_path In_channel.input_lines
      in
      Alcotest.(check int) "three responses" 3 (List.length lines);
      match List.map parse_exn lines with
      | [ a; b; c ] ->
        Alcotest.(check bool) "ping ok" true (is_ok a);
        Alcotest.(check bool) "bad line answered" false (is_ok b);
        Alcotest.(check bool) "loop continues after an error" true (is_ok c)
      | _ -> Alcotest.fail "unreachable")

let test_canonical_key () =
  let key s =
    match Core.Query.Protocol.request_of_json (parse_exn s) with
    | Ok r -> Core.Query.Protocol.canonical_key r
    | Error _ -> Alcotest.failf "canonical_key: %S did not parse" s
  in
  (* the id never participates in the key *)
  Alcotest.(check string) "id stripped"
    (key {|{"op":"ping"}|})
    (key {|{"op":"ping","id":42}|});
  (* the three spellings of "no phase filter" share one cache entry *)
  let absent = key {|{"op":"completeness","syscalls":[0,1]}|} in
  Alcotest.(check string) {|"all" collapses to absent|} absent
    (key {|{"op":"completeness","syscalls":[0,1],"phase":"all"}|});
  Alcotest.(check string) {|"" collapses to absent|} absent
    (key {|{"op":"completeness","syscalls":[0,1],"phase":""}|});
  (* a real phase filter must NOT collapse *)
  if key {|{"op":"completeness","syscalls":[0,1],"phase":"init"}|} = absent
  then Alcotest.fail "phase=init collapsed into the unfiltered key";
  if
    key {|{"op":"completeness","syscalls":[0,1],"phase":"init"}|}
    = key {|{"op":"completeness","syscalls":[0,1],"phase":"serving"}|}
  then Alcotest.fail "init and serving share a cache key";
  (* field order is irrelevant *)
  Alcotest.(check string) "field order canonicalized"
    (key {|{"op":"top","n":5}|})
    (key {|{"n":5,"op":"top"}|});
  (* and the collapse is observable end to end: the default-phase
     spellings return identical answers, so caching them together is
     sound (this was the stale-result bug: same key, different phase
     would have been unsound — assert the answers really match) *)
  let strip_id j =
    match j with
    | Json.Obj fs -> Json.Obj (List.filter (fun (k, _) -> k <> "id") fs)
    | x -> x
  in
  let a = strip_id (respond {|{"op":"top","n":3}|}) in
  let b = strip_id (respond {|{"op":"top","n":3,"phase":"all"}|}) in
  Alcotest.(check string) "collapsed keys agree on the answer"
    (Json.to_string a) (Json.to_string b)

let () =
  Alcotest.run "query"
    [ ( "index-vs-oracle",
        [ Alcotest.test_case "importance" `Quick
            test_importance_matches_oracle;
          Alcotest.test_case "ranking" `Quick test_ranking_matches_oracle;
          Alcotest.test_case "subset completeness" `Quick
            test_subset_completeness_matches_oracle;
          Alcotest.test_case "predicate completeness" `Quick
            test_predicate_completeness_matches_oracle;
          Alcotest.test_case "dependents" `Quick test_dependents_ranked;
          Alcotest.test_case "sharded eval" `Quick
            test_sharded_matches_unsharded;
          Alcotest.test_case "batch eval" `Quick test_eval_subsets_batch ] );
      ( "json",
        [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects" `Quick test_json_rejects ] );
      ( "serve",
        [ Alcotest.test_case "operations" `Quick test_serve_ops;
          Alcotest.test_case "errors" `Quick test_serve_errors;
          Alcotest.test_case "loop" `Quick test_serve_loop;
          Alcotest.test_case "canonical key" `Quick test_canonical_key ] )
    ]
