(* Tests for the scatter/gather router: in-process {!Server} shards on
   ephemeral ports behind a {!Router}, checking the routed
   completeness sum against the single-process evaluator (<= 1e-12),
   structured degradation when a shard dies (never a hang, never a
   partial sum), admission-control shedding, round-robin forwarding,
   and the binary client path end to end. *)

module Json = Core.Query.Json
module P = Core.Query.Protocol
module Server = Core.Query.Server
module Router = Core.Query.Router
module Engine = Core.Query.Engine
module Snapshot = Core.Db.Snapshot

let env = lazy (Core.Study.Env.create_small ())
let index () = (Lazy.force env).Core.Study.Env.index

let start_shard () =
  match
    Server.start
      ~config:{ Server.default with workers = Some 2 }
      (index ())
  with
  | Ok srv -> srv
  | Error msg -> Alcotest.failf "shard start: %s" msg

let spec srv = { Router.sh_host = "127.0.0.1"; sh_port = Server.port srv }

(* A fleet of [n] in-process shards behind a router; [f] gets both so
   tests can kill shards mid-run. Everything stops on the way out. *)
let with_fleet ?(n = 3) ?config f =
  let shards = List.init n (fun _ -> start_shard ()) in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop shards)
    (fun () ->
      match Router.start ?config (List.map spec shards) with
      | Error msg -> Alcotest.failf "router start: %s" msg
      | Ok router ->
        Fun.protect
          ~finally:(fun () -> Router.stop router)
          (fun () -> f router (Array.of_list shards)))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

(* One JSON conversation via the router, in-order responses. *)
let converse port reqs =
  let _fd, ic, oc = connect port in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    reqs;
  flush oc;
  let resps = List.map (fun _ -> parse_exn (input_line ic)) reqs in
  close_out_noerr oc;
  close_in_noerr ic;
  resps

let ask port line = List.hd (converse port [ line ])

let is_ok v =
  match Json.member "ok" v with Some (Json.Bool b) -> b | _ -> false

let error_kind v =
  match Json.member "error" v with
  | Some e -> (
    match Json.member "kind" e with
    | Some (Json.Str k) -> k
    | _ -> Alcotest.failf "no error kind in %s" (Json.to_string v))
  | None -> Alcotest.failf "not an error: %s" (Json.to_string v)

let num field v =
  match Json.member field v with
  | Some (Json.Num f) -> f
  | _ -> Alcotest.failf "response lacks %S: %s" field (Json.to_string v)

let completeness_req ?phase syscalls =
  let nrs = String.concat "," (List.map string_of_int syscalls) in
  match phase with
  | None -> Printf.sprintf {|{"op":"completeness","syscalls":[%s]}|} nrs
  | Some p ->
    Printf.sprintf {|{"op":"completeness","syscalls":[%s],"phase":"%s"}|}
      nrs p

(* --- scatter/gather correctness ------------------------------------- *)

let test_scatter_matches_single_process () =
  with_fleet (fun router _ ->
      let port = Router.port router in
      List.iter
        (fun (syscalls, phase, label) ->
          let routed = num "completeness" (ask port (completeness_req ?phase syscalls)) in
          let direct =
            Engine.eval_syscalls
              ?phase:
                (Option.map
                   (fun p ->
                     match Engine.phase_of_string p with
                     | Ok ph -> ph
                     | Error e -> Alcotest.failf "phase %s: %s" p e)
                   phase)
              (index ()) syscalls
          in
          if Float.abs (routed -. direct) > 1e-12 then
            Alcotest.failf "%s: routed %.17g vs direct %.17g" label routed
              direct)
        [ ([ 0; 1; 2; 3 ], None, "small subset");
          ([], None, "empty subset");
          (List.init 200 Fun.id, None, "wide subset");
          ([ 0; 1; 2; 3 ], Some "init", "init phase");
          ([ 5; 9; 60 ], Some "serving", "serving phase") ])

let test_scatter_matches_random () =
  (* property-style sweep over random subsets and phases, one fleet
     for all of them: routed completeness is the single-process
     answer within accumulation noise *)
  let rand = Random.State.make [| 0x5ca7; 0x6a7e |] in
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_bound 50) (int_bound 447))
        (oneofl [ None; Some Engine.Init; Some Engine.Serving;
                  Some Engine.All ]))
  in
  with_fleet ~n:2 (fun router _ ->
      let port = Router.port router in
      for _ = 1 to 30 do
        let syscalls, phase = QCheck2.Gen.generate1 ~rand gen in
        let wire =
          Option.map
            (function
              | Engine.Init -> "init"
              | Engine.Serving -> "serving"
              | Engine.All -> "all")
            phase
        in
        let routed =
          num "completeness"
            (ask port (completeness_req ?phase:wire syscalls))
        in
        let direct = Engine.eval_syscalls ?phase (index ()) syscalls in
        if Float.abs (routed -. direct) > 1e-12 then
          Alcotest.failf "random subset diverged: %.17g vs %.17g" routed
            direct
      done)

let test_forwarded_ops () =
  (* point ops round-robin to some healthy shard and match the local
     evaluator's JSON answers *)
  with_fleet (fun router _ ->
      let port = Router.port router in
      let local line =
        parse_exn (Core.Query.Serve.handle_line (index ()) line)
      in
      List.iter
        (fun line ->
          let routed = ask port line in
          Alcotest.(check bool)
            (Printf.sprintf "%s ok" line)
            true (is_ok routed);
          Alcotest.(check string)
            (Printf.sprintf "%s matches local" line)
            (Json.to_string (local line))
            (Json.to_string routed))
        [ {|{"op":"importance","api":"read"}|};
          {|{"op":"top","n":5}|};
          {|{"op":"dependents","api":"syscall:0","limit":3}|};
          {|{"op":"partial-completeness","syscalls":[0,1],"lo":0,"hi":50}|}
        ])

let test_local_ops_and_stats () =
  with_fleet (fun router shards ->
      let port = Router.port router in
      let r = ask port {|{"op":"ping","id":1}|} in
      Alcotest.(check bool) "ping ok" true (is_ok r);
      let r = ask port {|{"op":"hello","versions":[1,9]}|} in
      Alcotest.(check bool) "hello ok" true (is_ok r);
      Alcotest.(check (float 0.0)) "negotiated version" 1.0 (num "version" r);
      let r = ask port {|{"op":"hello","versions":[42]}|} in
      Alcotest.(check bool) "future-only hello rejected" false (is_ok r);
      Alcotest.(check string) "hello error kind" "unsupported-version"
        (error_kind r);
      let r = ask port {|{"op":"stats"}|} in
      Alcotest.(check bool) "stats ok" true (is_ok r);
      Alcotest.(check int) "stats package count"
        (int_of_float
           (num "n_packages"
              (parse_exn
                 (Core.Query.Serve.handle_line (index ()) {|{"op":"stats"}|}))))
        (int_of_float (num "n_packages" r));
      (match Json.member "shards_healthy" r with
       | Some (Json.Num f) ->
         Alcotest.(check int) "stats shard gauge" (Array.length shards)
           (int_of_float f)
       | _ -> Alcotest.fail "stats lacks shards_healthy gauge");
      let r = ask port {|{"op":"explode"}|} in
      Alcotest.(check string) "unknown op" "unknown-op" (error_kind r))

(* --- degradation ------------------------------------------------------ *)

let test_shard_down_structured () =
  (* kill one shard: scatters answer a structured degraded error
     promptly (never hang, never a partial sum); ping still works *)
  with_fleet
    ~config:{ Router.default with shard_timeout = 2.0; health_period = 0.2 }
    (fun router shards ->
      let port = Router.port router in
      Alcotest.(check bool) "pre-kill scatter ok" true
        (is_ok (ask port (completeness_req [ 0; 1; 2 ])));
      Server.stop shards.(1);
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec until_degraded () =
        let r = ask port (completeness_req [ 0; 1; 2 ]) in
        if is_ok r then begin
          (* the dead shard's connection may need one scatter to be
             noticed; an ok answer before that is the cached/alive path *)
          if Unix.gettimeofday () > deadline then
            Alcotest.fail "scatter kept succeeding with a dead shard";
          Thread.delay 0.05;
          until_degraded ()
        end
        else r
      in
      let r = until_degraded () in
      Alcotest.(check string) "degraded kind" "degraded" (error_kind r);
      (* the error names the shard it lost *)
      (match Json.member "error" r with
       | Some e -> (
         match Json.member "msg" e with
         | Some (Json.Str m) ->
           Alcotest.(check bool)
             (Printf.sprintf "msg names the shard: %s" m)
             true
             (String.length m > 0)
         | _ -> Alcotest.fail "degraded error lacks msg")
       | None -> assert false);
      (* local and forwarded ops still answer *)
      Alcotest.(check bool) "ping survives" true
        (is_ok (ask port {|{"op":"ping"}|}));
      Alcotest.(check bool) "forwarded op survives via healthy shards" true
        (is_ok (ask port {|{"op":"top","n":3}|}));
      (* the health thread marks it down *)
      let rec wait_unhealthy tries =
        if Router.healthy_shards router < Array.length shards then ()
        else if tries = 0 then
          Alcotest.fail "health pings never noticed the dead shard"
        else begin
          Thread.delay 0.1;
          wait_unhealthy (tries - 1)
        end
      in
      wait_unhealthy 50)

let test_all_shards_down () =
  (* even with every shard dead the router answers structured errors *)
  with_fleet ~n:2
    ~config:{ Router.default with shard_timeout = 1.0; health_period = 0.2 }
    (fun router shards ->
      let port = Router.port router in
      Array.iter Server.stop shards;
      let r = ask port (completeness_req [ 0; 1 ]) in
      Alcotest.(check bool) "scatter structured" false (is_ok r);
      let r = ask port {|{"op":"top","n":2}|} in
      Alcotest.(check bool) "forward structured" false (is_ok r);
      Alcotest.(check bool) "ping still local" true
        (is_ok (ask port {|{"op":"ping"}|})))

let test_overload_sheds_structured () =
  (* a one-worker, one-slot router under a burst must shed with
     structured overloaded errors, in per-connection order, and still
     answer everything *)
  with_fleet ~n:2
    ~config:{ Router.default with workers = 1; queue_bound = 1 }
    (fun router _ ->
      let port = Router.port router in
      let n = 200 in
      let reqs =
        List.init n (fun i ->
            Printf.sprintf
              {|{"op":"completeness","syscalls":[0,1,2,3,4],"id":%d}|} i)
      in
      let resps = converse port reqs in
      Alcotest.(check int) "every request answered" n (List.length resps);
      let shed = ref 0 in
      List.iteri
        (fun i r ->
          Alcotest.(check int)
            (Printf.sprintf "response %d in order" i)
            i
            (int_of_float (num "id" r));
          if not (is_ok r) then begin
            Alcotest.(check string)
              (Printf.sprintf "response %d shed kind" i)
              "overloaded" (error_kind r);
            incr shed
          end)
        resps;
      if !shed = 0 then
        Alcotest.fail "burst never tripped admission control";
      if !shed = n then Alcotest.fail "every request was shed")

(* --- sliced fleet ----------------------------------------------------- *)

(* A shard serving a range-sliced image: the slice is cut with
   [to_image_string ~range], loaded back, and served like any other
   index — the router reads the slice bounds off its stats gauges. *)
let start_sliced_shard (lo, hi) =
  let img =
    match
      Engine.to_image_string ~seed:7 ~source_key:"router-sliced"
        ~range:(lo, hi) (index ())
    with
    | Ok s -> s
    | Error e ->
      Alcotest.failf "slice image (%d,%d): %a" lo hi Snapshot.pp_error e
  in
  let q =
    match Engine.of_image img with
    | Ok q -> q
    | Error e ->
      Alcotest.failf "slice load (%d,%d): %a" lo hi Snapshot.pp_error e
  in
  match
    Server.start ~config:{ Server.default with workers = Some 2 } q
  with
  | Ok srv -> srv
  | Error msg -> Alcotest.failf "sliced shard start: %s" msg

let test_sliced_fleet_matches_single_process () =
  (* three shards each serving one slice of the index: scatters merge
     the sliced partials back to the single-process answer, and the
     ops that must scatter on a sliced fleet (dependents,
     partial-completeness) still match the local evaluator *)
  let n = Engine.n_packages (index ()) in
  let ranges = Engine.shard_ranges n 3 in
  let shards = List.map start_sliced_shard ranges in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop shards)
    (fun () ->
      match Router.start (List.map spec shards) with
      | Error msg -> Alcotest.failf "sliced router start: %s" msg
      | Ok router ->
        Fun.protect
          ~finally:(fun () -> Router.stop router)
          (fun () ->
            let port = Router.port router in
            let local line =
              parse_exn (Core.Query.Serve.handle_line (index ()) line)
            in
            (* completeness scatters over the slices *)
            List.iter
              (fun (syscalls, phase) ->
                let routed =
                  num "completeness"
                    (ask port (completeness_req ?phase syscalls))
                in
                let direct =
                  Engine.eval_syscalls
                    ?phase:
                      (Option.map
                         (fun p ->
                           match Engine.phase_of_string p with
                           | Ok ph -> ph
                           | Error e -> Alcotest.failf "phase %s: %s" p e)
                         phase)
                    (index ()) syscalls
                in
                if Float.abs (routed -. direct) > 1e-12 then
                  Alcotest.failf "sliced scatter diverged: %.17g vs %.17g"
                    routed direct)
              [ ([ 0; 1; 2; 3 ], None);
                ([], None);
                (List.init 200 Fun.id, None);
                ([ 0; 1; 2; 3 ], Some "init");
                ([ 5; 9; 60 ], Some "serving") ];
            (* partial-completeness spanning every slice boundary *)
            List.iter
              (fun (lo, hi) ->
                let line =
                  Printf.sprintf
                    {|{"op":"partial-completeness","syscalls":[0,1,7],"lo":%d,"hi":%d}|}
                    lo hi
                in
                let routed = ask port line in
                Alcotest.(check bool)
                  (Printf.sprintf "partial [%d,%d) ok" lo hi)
                  true (is_ok routed);
                let direct = local line in
                if
                  Float.abs (num "num" routed -. num "num" direct) > 1e-12
                  || not
                       (Float.equal (num "den" routed) (num "den" direct))
                then
                  Alcotest.failf "sliced partial [%d,%d) diverged" lo hi)
              [ (0, n); (10, n - 17); (0, 1); (n - 1, n); (50, 50) ];
            (* dependents merges per-slice rows without touching the
               floats — byte-identical to the local answer *)
            List.iter
              (fun line ->
                Alcotest.(check string)
                  (Printf.sprintf "%s matches local" line)
                  (Json.to_string (local line))
                  (Json.to_string (ask port line)))
              [ {|{"op":"dependents","api":"syscall:0","limit":5}|};
                {|{"op":"importance","api":"read"}|};
                {|{"op":"top","n":5}|} ];
            let r = ask port {|{"op":"stats"}|} in
            Alcotest.(check int) "sliced stats package count" n
              (int_of_float (num "n_packages" r))))

(* --- batched vs unbatched clients ------------------------------------- *)

let test_mixed_batching_equivalence () =
  (* two routers over the same shards, one coalescing shard writes
     into batch frames and one sending a frame per message, hammered
     by concurrent clients at the same time: every answer from either
     is the single-process one within accumulation noise *)
  let shards = List.init 2 (fun _ -> start_shard ()) in
  Fun.protect
    ~finally:(fun () -> List.iter Server.stop shards)
    (fun () ->
      let start_router batching =
        match
          Router.start
            ~config:{ Router.default with batching }
            (List.map spec shards)
        with
        | Ok r -> r
        | Error msg -> Alcotest.failf "router start: %s" msg
      in
      let batched = start_router true in
      let plain = start_router false in
      Fun.protect
        ~finally:(fun () ->
          Router.stop batched;
          Router.stop plain)
        (fun () ->
          let subsets =
            [ [ 0; 1; 2; 3 ]; []; [ 5; 9; 60 ]; List.init 120 Fun.id;
              [ 0; 7 ] ]
          in
          let expected =
            List.map (fun s -> Engine.eval_syscalls (index ()) s) subsets
          in
          let fail_m = Mutex.create () in
          let failures = ref [] in
          let record msg =
            Mutex.lock fail_m;
            failures := msg :: !failures;
            Mutex.unlock fail_m
          in
          let client label port () =
            try
              let reqs =
                List.concat
                  (List.init 4 (fun _ ->
                       List.map (fun s -> completeness_req s) subsets))
              in
              let resps = converse port reqs in
              List.iteri
                (fun i r ->
                  let want = List.nth expected (i mod List.length subsets) in
                  let got = num "completeness" r in
                  if Float.abs (got -. want) > 1e-12 then
                    record
                      (Printf.sprintf "%s resp %d: %.17g vs %.17g" label i
                         got want))
                resps
            with e -> record (label ^ ": " ^ Printexc.to_string e)
          in
          let threads =
            List.concat
              [ List.init 4 (fun i ->
                    Thread.create
                      (client
                         (Printf.sprintf "batched-%d" i)
                         (Router.port batched))
                      ());
                List.init 2 (fun i ->
                    Thread.create
                      (client
                         (Printf.sprintf "plain-%d" i)
                         (Router.port plain))
                      ()) ]
          in
          List.iter Thread.join threads;
          (match !failures with
           | [] -> ()
           | msgs ->
             Alcotest.failf "mixed fleet diverged:\n%s"
               (String.concat "\n" msgs))))

(* --- binary client path ---------------------------------------------- *)

let test_binary_client () =
  with_fleet ~n:2 (fun router _ ->
      let port = Router.port router in
      let _fd, ic, oc = connect port in
      let send r = output_string oc (P.Bin.encode_request r) in
      let recv () =
        match P.Bin.input_frame ic with
        | Ok payload -> (
          match P.Bin.decode_response payload with
          | Ok r -> r
          | Error e -> Alcotest.failf "binary response: %s" e)
        | Error `Eof -> Alcotest.fail "router closed the binary stream"
        | Error (`Bad m) -> Alcotest.failf "binary framing: %s" m
      in
      send { P.rq_id = Some (Json.Num 1.0); rq_op = P.Hello [ 1 ] };
      send
        {
          P.rq_id = Some (Json.Num 2.0);
          rq_op = P.Completeness { syscalls = [ 0; 1; 2 ]; phase = Engine.All };
        };
      send { P.rq_id = Some (Json.Num 3.0); rq_op = P.Top 3 };
      flush oc;
      (match (recv ()).P.rs_result with
       | Ok (P.Hello_r { version = 1; _ }) -> ()
       | _ -> Alcotest.fail "binary hello failed");
      (match (recv ()).P.rs_result with
       | Ok (P.Completeness_r { completeness; _ }) ->
         let direct = Engine.eval_syscalls (index ()) [ 0; 1; 2 ] in
         if Float.abs (completeness -. direct) > 1e-12 then
           Alcotest.fail "binary scatter mismatch"
       | _ -> Alcotest.fail "binary completeness failed");
      (match (recv ()).P.rs_result with
       | Ok (P.Top_r rows) ->
         Alcotest.(check int) "binary top rows" 3 (List.length rows)
       | _ -> Alcotest.fail "binary top failed");
      close_out_noerr oc;
      close_in_noerr ic)

let () =
  Alcotest.run "router"
    [ ( "scatter",
        [ Alcotest.test_case "matches single-process" `Quick
            test_scatter_matches_single_process;
          Alcotest.test_case "matches on random subsets" `Quick
            test_scatter_matches_random;
          Alcotest.test_case "forwarded ops" `Quick test_forwarded_ops;
          Alcotest.test_case "local ops and stats" `Quick
            test_local_ops_and_stats ] );
      ( "degradation",
        [ Alcotest.test_case "shard down is structured" `Quick
            test_shard_down_structured;
          Alcotest.test_case "all shards down" `Quick test_all_shards_down;
          Alcotest.test_case "overload sheds" `Quick
            test_overload_sheds_structured ] );
      ( "sliced",
        [ Alcotest.test_case "sliced fleet matches single-process" `Quick
            test_sliced_fleet_matches_single_process ] );
      ( "batching",
        [ Alcotest.test_case "mixed batched/unbatched clients" `Quick
            test_mixed_batching_equivalence ] );
      ( "binary",
        [ Alcotest.test_case "binary client" `Quick test_binary_client ] )
    ]
