(* Tests for the concurrent TCP server: several simultaneous clients
   with interleaved valid and malformed requests, per-connection
   response ordering, an idle client that must not starve the others,
   and a clean graceful shutdown. Everything runs against an ephemeral
   port ([~port:0]) on the shared small corpus. *)

module Json = Core.Query.Json
module Server = Core.Query.Server

let env = lazy (Core.Study.Env.create_small ())
let index () = (Lazy.force env).Core.Study.Env.index

let start_exn ?workers ?(cache_capacity = 1024) () =
  let config = { Server.default with workers; cache_capacity } in
  match Server.start ~config (index ()) with
  | Ok srv -> srv
  | Error msg -> Alcotest.failf "server start: %s" msg

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let parse_exn s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let is_ok v =
  match Json.member "ok" v with Some (Json.Bool b) -> b | _ -> false

let id_of v =
  match Json.member "id" v with
  | Some (Json.Num f) -> int_of_float f
  | _ -> Alcotest.failf "no id in %s" (Json.to_string v)

(* One client conversation: send [reqs] (already newline-free JSON
   lines), read exactly as many response lines, return them parsed. *)
let converse port reqs =
  let _fd, ic, oc = connect port in
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    reqs;
  flush oc;
  let resps = List.map (fun _ -> parse_exn (input_line ic)) reqs in
  close_out_noerr oc;
  close_in_noerr ic;
  resps

let test_single_client () =
  let srv = start_exn ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let resps =
        converse (Server.port srv)
          [ {|{"op":"ping","id":1}|};
            {|{"op":"completeness","syscalls":[0,1,2],"id":2}|};
            "this is not json";
            {|{"op":"stats","id":4}|} ]
      in
      match resps with
      | [ a; b; c; d ] ->
        Alcotest.(check bool) "ping ok" true (is_ok a);
        Alcotest.(check int) "ping id" 1 (id_of a);
        Alcotest.(check bool) "completeness ok" true (is_ok b);
        Alcotest.(check int) "completeness id" 2 (id_of b);
        Alcotest.(check bool) "malformed answered, not dropped" false
          (is_ok c);
        Alcotest.(check bool) "stats ok after bad line" true (is_ok d);
        Alcotest.(check int) "stats id" 4 (id_of d)
      | l -> Alcotest.failf "expected 4 responses, got %d" (List.length l))

let test_concurrent_clients () =
  (* N clients at once, each sending a distinct interleaving of valid
     and malformed requests tagged with unique ids; every client must
     get its own responses back in send order *)
  let n_clients = 6 and per_client = 25 in
  let srv = start_exn ~workers:3 () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let results = Array.make n_clients [] in
      let errors = Array.make n_clients None in
      let run c () =
        try
          let reqs =
            List.init per_client (fun i ->
                let id = (c * 1000) + i in
                match i mod 4 with
                | 0 -> Printf.sprintf {|{"op":"ping","id":%d}|} id
                | 1 ->
                  Printf.sprintf
                    {|{"op":"completeness","syscalls":[%d,%d],"id":%d}|}
                    (i mod 40) ((i * 7) mod 40) id
                | 2 -> Printf.sprintf {|{"id":%d,"op":"explode"}|} id
                | _ -> Printf.sprintf {|{"op":"top","n":3,"id":%d}|} id)
          in
          results.(c) <- converse port reqs
        with e -> errors.(c) <- Some (Printexc.to_string e)
      in
      let threads =
        List.init n_clients (fun c -> Thread.create (run c) ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun c -> function
          | Some msg -> Alcotest.failf "client %d failed: %s" c msg
          | None -> ())
        errors;
      Array.iteri
        (fun c resps ->
          Alcotest.(check int)
            (Printf.sprintf "client %d response count" c)
            per_client (List.length resps);
          List.iteri
            (fun i r ->
              Alcotest.(check int)
                (Printf.sprintf "client %d response %d in order" c i)
                ((c * 1000) + i)
                (id_of r);
              (* the deliberately-unknown op comes back as a handled
                 error, everything else succeeds *)
              Alcotest.(check bool)
                (Printf.sprintf "client %d response %d status" c i)
                (i mod 4 <> 2) (is_ok r))
            resps)
        results;
      Alcotest.(check bool) "all connections counted" true
        (Server.connections_served srv >= n_clients))

let test_idle_client_no_starvation () =
  (* a connected-but-silent client holds no worker: a busy client on
     the same 1-worker server must still get answers *)
  let srv = start_exn ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let idle_fd, _, _ = connect port in
      Fun.protect
        ~finally:(fun () -> (try Unix.close idle_fd with _ -> ()))
        (fun () ->
          let resps =
            converse port
              (List.init 10 (fun i ->
                   Printf.sprintf {|{"op":"ping","id":%d}|} i))
          in
          Alcotest.(check int) "busy client fully served" 10
            (List.length resps);
          List.iteri
            (fun i r -> Alcotest.(check int) "order" i (id_of r))
            resps))

let test_graceful_stop () =
  (* stop must flush queued work: send a burst, then stop from another
     thread while the client is still reading; every request that made
     it in gets an answer before the connection closes *)
  let srv = start_exn ~workers:2 () in
  let port = Server.port srv in
  let _, ic, oc = connect port in
  let n = 50 in
  for i = 0 to n - 1 do
    output_string oc (Printf.sprintf {|{"op":"ping","id":%d}|} i);
    output_char oc '\n'
  done;
  flush oc;
  let stopper = Thread.create (fun () -> Server.stop srv) () in
  let got = ref 0 in
  (try
     while !got < n do
       let r = parse_exn (input_line ic) in
       Alcotest.(check int) "ordered during shutdown" !got (id_of r);
       incr got
     done
   with End_of_file -> ());
  Thread.join stopper;
  Alcotest.(check int) "every queued request answered" n !got;
  (* idempotent: a second stop and a wait both return immediately *)
  Server.stop srv;
  Server.wait srv;
  close_in_noerr ic;
  close_out_noerr oc

let test_cache_consistency () =
  (* the shared LRU must not leak one client's id into another's
     response for the same canonical request *)
  let srv = start_exn ~workers:2 ~cache_capacity:16 () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let q id =
        Printf.sprintf {|{"op":"completeness","syscalls":[0,1],"id":%d}|} id
      in
      let r1 = List.hd (converse port [ q 101 ]) in
      let r2 = List.hd (converse port [ q 202 ]) in
      Alcotest.(check int) "first id" 101 (id_of r1);
      Alcotest.(check int) "second id (cache hit rewrites id)" 202
        (id_of r2);
      let v = function
        | Json.Num f -> f
        | _ -> Alcotest.fail "no completeness value"
      in
      let field r =
        match Json.member "completeness" r with
        | Some x -> v x
        | None -> Alcotest.fail "completeness missing"
      in
      Alcotest.(check bool) "identical payload" true
        (Float.equal (field r1) (field r2)))

let test_batch_order_one_worker () =
  (* One worker, one coalesced frame: the batch arm regroups
     completeness sub-requests by phase (and drains partials in its
     own pass), so the response vector must still come back in
     request order — and each sub-response must be byte-identical to
     the answer the same op gets when sent alone. The cache is off so
     the singles cannot echo entries the batch warmed. *)
  let srv = start_exn ~workers:1 ~cache_capacity:0 () in
  Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
  let port = Server.port srv in
  let subs =
    [ {|{"op":"completeness","syscalls":[0,1,2],"id":100}|};
      {|{"op":"partial-completeness","syscalls":[0,7],"lo":0,"hi":3,"id":101}|};
      {|{"op":"completeness","syscalls":[7],"phase":"init","id":102}|};
      {|{"op":"ping","id":103}|};
      {|{"op":"completeness","syscalls":[1,7],"id":104}|};
      {|{"op":"explode","id":105}|};
      {|{"op":"partial-completeness","syscalls":[],"lo":1,"hi":1,"id":106}|};
      {|{"op":"completeness","syscalls":[0],"phase":"serving","id":107}|};
      {|{"op":"top","n":2,"id":108}|};
      {|{"op":"importance","api":"read","id":109}|}
    ]
  in
  let batch =
    Printf.sprintf {|{"op":"batch","id":9,"requests":[%s]}|}
      (String.concat "," subs)
  in
  match converse port (batch :: subs) with
  | b :: singles ->
    Alcotest.(check bool) "batch ok" true (is_ok b);
    Alcotest.(check int) "batch id" 9 (id_of b);
    (match Json.member "responses" b with
     | Some (Json.Arr rs) ->
       Alcotest.(check int) "one response per sub-request"
         (List.length subs) (List.length rs);
       List.iteri
         (fun i (r, single) ->
           Alcotest.(check int)
             (Printf.sprintf "sub-response %d in request order" i)
             (100 + i) (id_of r);
           Alcotest.(check string)
             (Printf.sprintf "sub-response %d equals the single answer" i)
             (Json.to_string single) (Json.to_string r))
         (List.combine rs singles)
     | _ -> Alcotest.failf "no responses array in %s" (Json.to_string b))
  | [] -> Alcotest.fail "no responses"

(* --- hot reload ---------------------------------------------------- *)

(* A deliberately different world: one package using only syscall 7,
   so after a reload the top-1 answer flips from the corpus ranking to
   syscall 7 — observable through the same canonicalized request. *)
let other_index () =
  let module Store = Core.Db.Store in
  let module Api = Core.Apidb.Api in
  let apis = Api.Set.singleton (Api.Syscall 7) in
  let store =
    Store.build ~total_installs:1000 ~bins:[]
      ~packages:
        [ {
            Store.pr_name = "only-seven";
            pr_installs = 900;
            pr_prob = 0.9;
            pr_deps = [];
            pr_essential = false;
            pr_apis = apis;
            pr_apis_elf = apis;
            pr_init = apis;
            pr_serving = Api.Set.empty;
          } ]
  in
  Core.Query.Engine.index store

let top1_nr r =
  match Json.member "syscalls" r with
  | Some (Json.Arr (first :: _)) ->
    (match Json.member "nr" first with
     | Some (Json.Num f) -> int_of_float f
     | _ -> Alcotest.fail "no nr in top row")
  | _ -> Alcotest.failf "no syscalls in %s" (Json.to_string r)

let test_reload_swaps_answers () =
  (* the reload must change the answer AND invalidate the response
     cache: the same canonical request was cached against the old
     index, so a stale hit would return the old top-1 *)
  let srv = start_exn ~workers:2 ~cache_capacity:64 () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let q id = Printf.sprintf {|{"op":"top","n":1,"id":%d}|} id in
      let before = List.hd (converse port [ q 1 ]) in
      Alcotest.(check bool) "pre-reload ok" true (is_ok before);
      Alcotest.(check int) "epoch starts at 0" 0 (Server.epoch_id srv);
      (* warm the cache again to make a stale hit as likely as possible *)
      ignore (converse port [ q 2 ]);
      Server.reload srv (other_index ());
      Alcotest.(check int) "reload bumps the epoch" 1 (Server.epoch_id srv);
      let after = List.hd (converse port [ q 3 ]) in
      Alcotest.(check bool) "post-reload ok" true (is_ok after);
      Alcotest.(check int) "post-reload answer is the new world's" 7
        (top1_nr after);
      if top1_nr before = 7 then
        Alcotest.fail "old index already answered 7; the swap is untested")

let test_reload_under_load () =
  (* clients hammer the server while the index is swapped back and
     forth: no dropped connection, no protocol error, per-connection
     order preserved, every request answered from some epoch *)
  let n_clients = 4 and per_client = 40 and reloads = 6 in
  let srv = start_exn ~workers:3 ~cache_capacity:32 () in
  Fun.protect
    ~finally:(fun () -> Server.stop srv)
    (fun () ->
      let port = Server.port srv in
      let results = Array.make n_clients [] in
      let errors = Array.make n_clients None in
      let run c () =
        try
          let reqs =
            List.init per_client (fun i ->
                let id = (c * 1000) + i in
                match i mod 3 with
                | 0 -> Printf.sprintf {|{"op":"ping","id":%d}|} id
                | 1 -> Printf.sprintf {|{"op":"top","n":2,"id":%d}|} id
                | _ ->
                  Printf.sprintf
                    {|{"op":"completeness","syscalls":[0,1,7],"id":%d}|} id)
          in
          results.(c) <- converse port reqs
        with e -> errors.(c) <- Some (Printexc.to_string e)
      in
      let threads =
        List.init n_clients (fun c -> Thread.create (run c) ())
      in
      let alt = other_index () and orig = index () in
      for r = 1 to reloads do
        Thread.delay 0.01;
        Server.reload srv (if r mod 2 = 1 then alt else orig)
      done;
      List.iter Thread.join threads;
      Array.iteri
        (fun c -> function
          | Some msg ->
            Alcotest.failf "client %d dropped across a reload: %s" c msg
          | None -> ())
        errors;
      Alcotest.(check int) "every reload swapped an epoch" reloads
        (Server.epoch_id srv);
      Array.iteri
        (fun c resps ->
          Alcotest.(check int)
            (Printf.sprintf "client %d fully answered" c)
            per_client (List.length resps);
          List.iteri
            (fun i r ->
              Alcotest.(check int)
                (Printf.sprintf "client %d response %d in order" c i)
                ((c * 1000) + i)
                (id_of r);
              Alcotest.(check bool)
                (Printf.sprintf "client %d response %d ok" c i)
                true (is_ok r))
            resps)
        results)

let () =
  Alcotest.run "server"
    [ ( "tcp",
        [ Alcotest.test_case "single client" `Quick test_single_client;
          Alcotest.test_case "concurrent clients" `Quick
            test_concurrent_clients;
          Alcotest.test_case "idle client no starvation" `Quick
            test_idle_client_no_starvation;
          Alcotest.test_case "graceful stop" `Quick test_graceful_stop;
          Alcotest.test_case "cache id consistency" `Quick
            test_cache_consistency;
          Alcotest.test_case "batch order, one worker" `Quick
            test_batch_order_one_worker ] );
      ( "reload",
        [ Alcotest.test_case "swaps answers and cache" `Quick
            test_reload_swaps_answers;
          Alcotest.test_case "under concurrent load" `Quick
            test_reload_under_load ] )
    ]
