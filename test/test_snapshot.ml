(* Tests for the snapshot wire format: round-trips through bytes and
   files, qcheck round-trips over randomized stores, and golden
   corruption cases — every malformed input must come back as a
   structured [error], never an exception. *)

module Api = Core.Apidb.Api
module Store = Core.Db.Store
module Snapshot = Core.Db.Snapshot
module Pipeline = Core.Db.Pipeline
module Generator = Core.Distro.Generator

let small_config = { Generator.default_config with n_packages = 60 }

let analyzed =
  lazy (Pipeline.run (Generator.generate ~config:small_config ()))

let snapshot () = Snapshot.of_analyzed (Lazy.force analyzed)

let ok_exn what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Snapshot.pp_error e

(* --- round-trips ------------------------------------------------------- *)

let test_roundtrip_bytes () =
  let snap = snapshot () in
  let bytes = Snapshot.to_string snap in
  let snap' = ok_exn "decode" (Snapshot.of_string bytes) in
  Alcotest.(check int) "package count"
    (Array.length snap.Snapshot.store.Store.packages)
    (Array.length snap'.Snapshot.store.Store.packages);
  Alcotest.(check int) "binary count"
    (List.length snap.Snapshot.store.Store.bins)
    (List.length snap'.Snapshot.store.Store.bins);
  Alcotest.(check int) "total installs"
    snap.Snapshot.store.Store.total_installs
    snap'.Snapshot.store.Store.total_installs;
  Alcotest.(check (list (pair string int))) "rejects"
    snap.Snapshot.rejects snap'.Snapshot.rejects;
  Alcotest.(check string) "meta source key"
    snap.Snapshot.meta.Snapshot.source_key
    snap'.Snapshot.meta.Snapshot.source_key;
  (* strongest equality we can ask for: re-encoding the decoded value
     reproduces the original byte stream exactly *)
  Alcotest.(check string) "re-encode is byte-identical" bytes
    (Snapshot.to_string snap')

let test_roundtrip_metrics () =
  let snap = snapshot () in
  let snap' =
    ok_exn "decode" (Snapshot.of_string (Snapshot.to_string snap))
  in
  let module I = Core.Metrics.Importance in
  List.iter
    (fun ((e : Core.Apidb.Syscall_table.entry), v) ->
      let v' =
        I.importance snap'.Snapshot.store
          (Api.Syscall e.Core.Apidb.Syscall_table.nr)
      in
      if v <> v' then
        Alcotest.failf "importance of %s changed across the round-trip"
          e.Core.Apidb.Syscall_table.name)
    (I.syscall_importances snap.Snapshot.store);
  Alcotest.(check (list int)) "ranking preserved"
    (I.rank_syscalls snap.Snapshot.store)
    (I.rank_syscalls snap'.Snapshot.store)

let test_roundtrip_file () =
  let snap = snapshot () in
  let path = Filename.temp_file "lapis-snap" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Snapshot.save path snap with
       | Ok () -> ()
       | Error e -> Alcotest.failf "save: %a" Snapshot.pp_error e);
      let snap' = ok_exn "load" (Snapshot.load path) in
      Alcotest.(check string) "file round-trip is byte-identical"
        (Snapshot.to_string snap)
        (Snapshot.to_string snap'))

let test_matches () =
  let snap = snapshot () in
  Alcotest.(check bool) "same config matches" true
    (Snapshot.matches snap small_config);
  Alcotest.(check bool) "different seed does not" false
    (Snapshot.matches snap { small_config with Generator.seed = 7 });
  Alcotest.(check bool) "different size does not" false
    (Snapshot.matches snap { small_config with Generator.n_packages = 61 })

(* --- qcheck round-trip over randomized stores -------------------------- *)

let gen_api =
  QCheck2.Gen.(
    oneof
      [ map (fun nr -> Api.Syscall nr) (int_range 0 450);
        map (fun c -> Api.Vop (Api.Ioctl, c)) (int_range 0 99);
        map (fun c -> Api.Vop (Api.Fcntl, c)) (int_range 0 20);
        map (fun c -> Api.Vop (Api.Prctl, c)) (int_range 0 20);
        map (fun n -> Api.Pseudo_file ("/proc/" ^ string_of_int n))
          (int_range 0 30);
        map (fun n -> Api.Libc_sym ("f" ^ string_of_int n)) (int_range 0 50)
      ])

let gen_pkg i =
  QCheck2.Gen.(
    let* apis = list_size (int_range 0 12) gen_api in
    let* elf_apis = list_size (int_range 0 6) gen_api in
    (* phased sets drawn independently: the codec must intern and
       round-trip them even when they are not subsets of pr_apis *)
    let* init_apis = list_size (int_range 0 8) gen_api in
    let* serving_apis = list_size (int_range 0 8) gen_api in
    let* prob = float_range 0.0 1.0 in
    let* essential = bool in
    let* dep = int_range 0 30 in
    let apiset l = List.fold_left (Fun.flip Api.Set.add) Api.Set.empty l in
    return
      {
        Store.pr_name = "pkg" ^ string_of_int i;
        pr_installs = int_of_float (prob *. 1_000_000.);
        pr_prob = prob;
        (* point at a possibly-missing package: Store.build tolerates
           dangling dependency names and the codec must too *)
        pr_deps = [ "pkg" ^ string_of_int dep ];
        pr_essential = essential;
        pr_apis = apiset apis;
        pr_apis_elf = apiset elf_apis;
        pr_init = apiset init_apis;
        pr_serving = apiset serving_apis;
      })

let gen_store =
  QCheck2.Gen.(
    let* n = int_range 0 25 in
    let* pkgs =
      flatten_l (List.init n (fun i -> gen_pkg i))
    in
    let* total = int_range 1 10_000_000 in
    return (Store.build ~total_installs:total ~bins:[] ~packages:pkgs))

let qcheck_roundtrip =
  QCheck2.Test.make ~count:60 ~name:"snapshot round-trip (random stores)"
    gen_store (fun store ->
      let snap =
        {
          Snapshot.meta =
            {
              Snapshot.version = Snapshot.format_version;
              seed = 1;
              n_packages = Array.length store.Store.packages;
              total_installs = store.Store.total_installs;
              source_key = "qcheck";
              release = 0;
            };
          store;
          rejects = [ ("decode-error", 2); ("analysis-crash", 0) ];
        }
      in
      let bytes = Snapshot.to_string snap in
      match Snapshot.of_string bytes with
      | Error e ->
        QCheck2.Test.fail_reportf "decode failed: %a" Snapshot.pp_error e
      | Ok snap' -> Snapshot.to_string snap' = bytes)

(* --- corruption golden cases ------------------------------------------- *)

let check_error name expected bytes =
  match Snapshot.of_string bytes with
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" name
  | Error e ->
    Alcotest.(check string) name expected (Snapshot.kind_name e)

let test_corruption_cases () =
  let bytes = Snapshot.to_string (snapshot ()) in
  (* not a snapshot at all *)
  check_error "wrong magic" "not-snapshot" ("XXXXXXXX" ^ String.sub bytes 8 60);
  check_error "html error page" "not-snapshot" "<html>404 not found</html>";
  (* header truncations: a genuine prefix of a snapshot is truncated,
     not foreign *)
  check_error "empty input" "truncated" "";
  check_error "cut inside magic" "truncated" (String.sub bytes 0 5);
  check_error "cut inside header" "truncated" (String.sub bytes 0 20);
  (* payload truncations at several depths *)
  let n = String.length bytes in
  List.iter
    (fun keep ->
      if keep < n then
        check_error
          (Printf.sprintf "truncated to %d bytes" keep)
          "truncated"
          (String.sub bytes 0 keep))
    [ 36; 37; 40; n / 2; n - 1 ];
  (* future format version *)
  let future = Bytes.of_string bytes in
  Bytes.set_int32_le future 8 99l;
  check_error "future version" "unsupported-version"
    (Bytes.to_string future);
  (* flipped payload byte is caught by the digest *)
  let flipped = Bytes.of_string bytes in
  let i = 36 + ((n - 36) / 2) in
  Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0x40));
  check_error "flipped payload byte" "digest-mismatch"
    (Bytes.to_string flipped);
  (* trailing garbage after a valid payload *)
  check_error "trailing garbage" "corrupt" (bytes ^ "tail")

let test_corruption_never_raises () =
  (* sweep every truncation point and a byte flip at every offset of a
     small snapshot: all must return, none may raise *)
  let store =
    Store.build ~total_installs:1000 ~bins:[]
      ~packages:
        [ {
            Store.pr_name = "a";
            pr_installs = 500;
            pr_prob = 0.5;
            pr_deps = [];
            pr_essential = false;
            pr_apis = Api.Set.singleton (Api.Syscall 0);
            pr_apis_elf = Api.Set.empty;
            pr_init = Api.Set.singleton (Api.Syscall 0);
            pr_serving = Api.Set.empty;
          } ]
  in
  let snap =
    {
      Snapshot.meta =
        {
          Snapshot.version = Snapshot.format_version;
          seed = 0;
          n_packages = 1;
          total_installs = 1000;
          source_key = "sweep";
          release = 0;
        };
      store;
      rejects = [];
    }
  in
  let bytes = Snapshot.to_string snap in
  let n = String.length bytes in
  for keep = 0 to n - 1 do
    match Snapshot.of_string (String.sub bytes 0 keep) with
    | Ok _ -> Alcotest.failf "truncation to %d decoded" keep
    | Error _ -> ()
  done;
  for i = 0 to n - 1 do
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
    ignore (Snapshot.of_string (Bytes.to_string b))
  done

let test_load_missing_file () =
  match Snapshot.load "/nonexistent/lapis.snapshot" with
  | Ok _ -> Alcotest.fail "loading a missing file succeeded"
  | Error e -> Alcotest.(check string) "io error" "io" (Snapshot.kind_name e)

let () =
  Alcotest.run "snapshot"
    [ ( "roundtrip",
        [ Alcotest.test_case "bytes" `Quick test_roundtrip_bytes;
          Alcotest.test_case "metrics" `Quick test_roundtrip_metrics;
          Alcotest.test_case "file" `Quick test_roundtrip_file;
          Alcotest.test_case "matches" `Quick test_matches;
          QCheck_alcotest.to_alcotest qcheck_roundtrip ] );
      ( "corruption",
        [ Alcotest.test_case "golden cases" `Quick test_corruption_cases;
          Alcotest.test_case "never raises" `Quick
            test_corruption_never_raises;
          Alcotest.test_case "missing file" `Quick test_load_missing_file ] )
    ]
