(* Tests for the x86-64 subset encoder/decoder, including the
   round-trip property on randomly generated instructions and
   disassembler resynchronization on garbage bytes. *)

open Core.X86

let regs =
  [ Insn.RAX; Insn.RCX; Insn.RDX; Insn.RBX; Insn.RSP; Insn.RBP; Insn.RSI;
    Insn.RDI; Insn.R8; Insn.R9; Insn.R10; Insn.R11; Insn.R12; Insn.R13;
    Insn.R14; Insn.R15 ]

let sample_insns =
  [ Insn.Mov_ri (Insn.RAX, 0L);
    Insn.Mov_ri (Insn.RAX, 60L);
    Insn.Mov_ri (Insn.RSI, 0x80045430L);  (* TIOCGPTN: high bit set *)
    Insn.Mov_ri (Insn.R12, 0xFFFFFFFFL);
    Insn.Mov_ri (Insn.RDI, 0x1_0000_0000L);  (* needs movabs *)
    Insn.Mov_ri (Insn.R15, Int64.min_int);
    Insn.Mov_rr (Insn.RBP, Insn.RSP);
    Insn.Mov_rr (Insn.R9, Insn.RAX);
    Insn.Xor_rr (Insn.RAX, Insn.RAX);
    Insn.Xor_rr (Insn.R11, Insn.RDX);
    Insn.Lea_rip (Insn.RDI, 0x1234l);
    Insn.Lea_rip (Insn.R8, -42l);
    Insn.Add_ri (Insn.RSP, 16l);
    Insn.Sub_ri (Insn.R13, 8l);
    Insn.Cmp_ri (Insn.RDI, 0l);
    Insn.Cmp_ri (Insn.R12, -7l);
    Insn.Jcc_rel (Insn.cc_e, 10l);
    Insn.Jcc_rel (Insn.cc_ne, -24l);
    Insn.Jcc_rel (0, 0l);
    Insn.Jcc_rel (15, 0x400l);
    Insn.Call_rel 0x100l;
    Insn.Call_rel (-5l);
    Insn.Call_reg Insn.RAX;
    Insn.Call_reg Insn.R10;
    Insn.Call_mem_rip 0x2000l;
    Insn.Jmp_rel 0l;
    Insn.Jmp_mem_rip 0x18l;
    Insn.Syscall;
    Insn.Int80;
    Insn.Sysenter;
    Insn.Push_r Insn.RBP;
    Insn.Push_r Insn.R14;
    Insn.Pop_r Insn.RBX;
    Insn.Pop_r Insn.R15;
    Insn.Ret;
    Insn.Nop ]

let insn_testable =
  Alcotest.testable (fun ppf i -> Fmt.string ppf (Insn.to_string i)) ( = )

let test_roundtrip_samples () =
  List.iter
    (fun insn ->
      let bytes = Encode.encode insn in
      let decoded, len = Decode.decode_at bytes 0 in
      Alcotest.check insn_testable (Insn.to_string insn) insn decoded;
      Alcotest.(check int) "length consumed" (String.length bytes) len;
      (* the scanner threads these lengths into rip-relative targets,
         so the sizing view must agree with the emitted bytes *)
      Alcotest.(check int) "Encode.length agrees" (String.length bytes)
        (Encode.length insn))
    sample_insns

let test_known_encodings () =
  let hex s = Encode.encode s in
  Alcotest.(check string) "syscall = 0f 05" "\x0f\x05" (hex Insn.Syscall);
  Alcotest.(check string) "ret = c3" "\xc3" (hex Insn.Ret);
  Alcotest.(check string) "int80 = cd 80" "\xcd\x80" (hex Insn.Int80);
  Alcotest.(check string)
    "mov eax, 60 = b8 3c 00 00 00" "\xb8\x3c\x00\x00\x00"
    (hex (Insn.Mov_ri (Insn.RAX, 60L)));
  Alcotest.(check string)
    "push rbp = 55" "\x55"
    (hex (Insn.Push_r Insn.RBP));
  Alcotest.(check string)
    "cmp rdi, 0 = 48 81 ff imm32" "\x48\x81\xff\x00\x00\x00\x00"
    (hex (Insn.Cmp_ri (Insn.RDI, 0l)));
  Alcotest.(check string)
    "je +10 = 0f 84 0a 00 00 00" "\x0f\x84\x0a\x00\x00\x00"
    (hex (Insn.Jcc_rel (Insn.cc_e, 10l)))

let test_decode_stream () =
  let insns =
    [ Insn.Push_r Insn.RBP; Insn.Mov_rr (Insn.RBP, Insn.RSP);
      Insn.Mov_ri (Insn.RAX, 1L); Insn.Syscall; Insn.Pop_r Insn.RBP;
      Insn.Ret ]
  in
  let bytes = Encode.encode_all insns in
  let decoded = List.map (fun (_, i, _) -> i) (Decode.decode_all bytes) in
  Alcotest.(check (list insn_testable)) "stream round-trips" insns decoded

let test_resync_on_garbage () =
  (* unknown bytes decode one at a time, and decoding always
     terminates covering the whole buffer *)
  let garbage = "\xf4\x0f\xae\xe8\x66\x90" in
  let decoded = Decode.decode_all garbage in
  let total = List.fold_left (fun a (_, _, len) -> a + len) 0 decoded in
  Alcotest.(check int) "whole buffer consumed" (String.length garbage) total

let test_truncated () =
  (* a truncated instruction must not raise, and must consume >= 1 *)
  let full = Encode.encode (Insn.Mov_ri (Insn.RAX, 60L)) in
  let cut = String.sub full 0 2 in
  let _, len = Decode.decode_at cut 0 in
  Alcotest.(check bool) "progress on truncation" true (len >= 1)

(* Property: encode/decode is the identity on the full subset. *)
let gen_insn =
  let open QCheck2.Gen in
  let reg = oneofl regs in
  let imm32 = map Int32.of_int (int_range (-1000000) 1000000) in
  let imm64 =
    oneof
      [ map Int64.of_int (int_range 0 0xFFFF);
        return 0xFFFFFFFFL;
        return 0x1_0000_0000L;
        map Int64.of_int (int_range (-1000000) (-1)) ]
  in
  oneof
    [ map2 (fun r v -> Insn.Mov_ri (r, v)) reg imm64;
      map2 (fun a b -> Insn.Mov_rr (a, b)) reg reg;
      map2 (fun a b -> Insn.Xor_rr (a, b)) reg reg;
      map2 (fun r d -> Insn.Lea_rip (r, d)) reg imm32;
      map2 (fun r d -> Insn.Add_ri (r, d)) reg imm32;
      map2 (fun r d -> Insn.Sub_ri (r, d)) reg imm32;
      map2 (fun r v -> Insn.Cmp_ri (r, v)) reg imm32;
      map2 (fun cc d -> Insn.Jcc_rel (cc, d)) (int_range 0 15) imm32;
      map (fun d -> Insn.Call_rel d) imm32;
      map (fun r -> Insn.Call_reg r) reg;
      map (fun d -> Insn.Call_mem_rip d) imm32;
      map (fun d -> Insn.Jmp_rel d) imm32;
      map (fun d -> Insn.Jmp_mem_rip d) imm32;
      return Insn.Syscall;
      return Insn.Int80;
      return Insn.Sysenter;
      map (fun r -> Insn.Push_r r) reg;
      map (fun r -> Insn.Pop_r r) reg;
      return Insn.Ret;
      return Insn.Nop ]

let prop_roundtrip =
  QCheck2.Test.make ~name:"encode/decode round-trip" ~count:2000 gen_insn
    (fun insn ->
      let bytes = Encode.encode insn in
      let decoded, len = Decode.decode_at bytes 0 in
      decoded = insn && len = String.length bytes)

(* Property: the arithmetic length table agrees with the encoder, so
   layout can be computed without materializing any bytes. *)
let prop_length_consistent =
  QCheck2.Test.make ~name:"length agrees with encode" ~count:2000 gen_insn
    (fun insn -> Encode.length insn = String.length (Encode.encode insn))

let prop_stream_roundtrip =
  QCheck2.Test.make ~name:"instruction streams round-trip" ~count:300
    QCheck2.Gen.(list_size (int_range 1 40) gen_insn)
    (fun insns ->
      let bytes = Encode.encode_all insns in
      let decoded = List.map (fun (_, i, _) -> i) (Decode.decode_all bytes) in
      decoded = insns)

let () =
  Alcotest.run "x86"
    [ ( "encode-decode",
        [ Alcotest.test_case "sample round-trips" `Quick test_roundtrip_samples;
          Alcotest.test_case "known encodings" `Quick test_known_encodings;
          Alcotest.test_case "stream decode" `Quick test_decode_stream;
          Alcotest.test_case "garbage resync" `Quick test_resync_on_garbage;
          Alcotest.test_case "truncation" `Quick test_truncated ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_length_consistent;
          QCheck_alcotest.to_alcotest prop_stream_roundtrip ] ) ]
